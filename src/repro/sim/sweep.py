"""Parameter sweeps with optional process parallelism.

Every paper experiment is an embarrassingly parallel sweep -- points
differ only in parameters and seed -- yet the drivers run serially so
their results stay bit-identical everywhere.  This module provides the
opt-in fast path: :func:`sweep` evaluates a point function over a
parameter grid, serially by default or across worker processes, with
deterministic per-point seeds derived from one root seed either way.

The point function must be a *module-level* callable (picklable) taking
``(params_dict, seed)``; results come back in grid order regardless of
completion order.

Long sweeps additionally get resilience:

- ``on_error="contain"`` turns a raising point into a
  :class:`PointError` in its grid slot instead of aborting the other
  N-1 points;
- ``checkpoint=<path>`` appends every finished point to a JSONL file
  and, on a re-run with the same grid shape and seed, skips the points
  already on disk -- a killed 10-hour sweep resumes instead of
  restarting.
"""

from __future__ import annotations

import functools
import itertools
import json
import pickle
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["grid", "sweep", "PointError"]


def grid(**axes: Iterable) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes, in document order.

    Axes may be any iterable -- lists, ranges, numpy arrays or one-shot
    generators (each axis is materialised exactly once).

    >>> grid(n_tags=[2, 3], d=[1.0])
    [{'n_tags': 2, 'd': 1.0}, {'n_tags': 3, 'd': 1.0}]
    """
    if not axes:
        return [{}]
    # Materialise every axis first: generators/iterators have no len()
    # and would be consumed by the product anyway.  Only a truly empty
    # axis (after materialisation) is an error.
    materialized = {name: list(values) for name, values in axes.items()}
    for name, values in materialized.items():
        if not values:
            raise ValueError(f"axis {name!r} is empty")
    names = list(materialized)
    combos = itertools.product(*(materialized[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass(frozen=True)
class PointError:
    """A contained failure of one sweep point (``on_error="contain"``).

    Occupies the failing point's slot in the result list so the grid
    order survives; carries everything needed to reproduce the failure
    (the exact params and seed) and to diagnose it (type, message,
    formatted traceback).
    """

    index: int
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    error_type: str = ""
    message: str = ""
    traceback: str = ""

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"PointError(#{self.index} {self.params}: {self.error_type}: {self.message})"


def _point_seeds(root_seed: int, n: int) -> List[int]:
    """Independent, reproducible per-point seeds."""
    seq = np.random.SeedSequence(root_seed)
    return [int(child.generate_state(1)[0]) for child in seq.spawn(n)]


def _run_point(point_fn, contain: bool, index: int, params: Dict[str, Any], seed: int):
    """Evaluate one point; module-level so it pickles to workers."""
    try:
        return point_fn(dict(params), seed)
    except Exception as exc:
        if not contain:
            raise
        return PointError(
            index=index,
            params=dict(params),
            seed=seed,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=_traceback.format_exc(),
        )


_PENDING = object()


def _load_checkpoint(
    path: Path,
    n_points: int,
    seed: int,
    points: List[Dict[str, Any]],
    seeds: List[int],
    results: List[Any],
    retry_errors: bool,
) -> None:
    """Fill *results* slots from a prior run's JSONL checkpoint."""
    if not path.exists() or path.stat().st_size == 0:
        return
    with open(path, "r") as fh:
        lines = [line for line in fh if line.strip()]
    header = json.loads(lines[0])
    if header.get("type") != "header":
        raise ValueError(f"checkpoint {path} has no header line; refusing to resume")
    if header.get("n_points") != n_points or header.get("seed") != seed:
        raise ValueError(
            f"checkpoint {path} belongs to a different sweep "
            f"(n_points={header.get('n_points')}, seed={header.get('seed')}; "
            f"this sweep has n_points={n_points}, seed={seed})"
        )
    for line in lines[1:]:
        rec = json.loads(line)
        if rec.get("type") != "point":
            continue
        i = int(rec["index"])
        if not 0 <= i < n_points:
            continue
        if rec.get("status") == "ok":
            results[i] = rec["result"]
        elif not retry_errors:
            results[i] = PointError(
                index=i,
                params=dict(points[i]),
                seed=seeds[i],
                error_type=rec.get("error_type", ""),
                message=rec.get("message", ""),
                traceback=rec.get("traceback", ""),
            )


class _CheckpointWriter:
    """Appends finished points to the JSONL checkpoint as they land."""

    def __init__(self, path: Path, n_points: int, seed: int):
        fresh = not path.exists() or path.stat().st_size == 0
        self._fh = open(path, "a")
        if fresh:
            self._write({"type": "header", "n_points": n_points, "seed": seed})

    def _write(self, rec: dict) -> None:
        self._fh.write(json.dumps(rec) + "\n")
        self._fh.flush()

    def record(self, index: int, result: Any) -> None:
        if isinstance(result, PointError):
            self._write(
                {
                    "type": "point",
                    "index": index,
                    "status": "error",
                    "error_type": result.error_type,
                    "message": result.message,
                    "traceback": result.traceback,
                }
            )
            return
        try:
            line = json.dumps({"type": "point", "index": index, "status": "ok", "result": result})
        except TypeError as exc:
            raise TypeError(
                f"sweep point #{index} returned a non-JSON-serializable result "
                f"({type(result).__name__}); checkpointing requires plain "
                "JSON-compatible results (numbers, strings, lists, dicts). "
                "Convert in point_fn or run without checkpoint=."
            ) from exc
        self._fh.write(line + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def sweep(
    point_fn: Callable[[Dict[str, Any], int], Any],
    points: Sequence[Mapping[str, Any]],
    seed: int = 0,
    workers: Optional[int] = None,
    chunksize: int = 1,
    on_error: str = "raise",
    checkpoint=None,
    retry_errors: bool = False,
) -> List[Any]:
    """Evaluate *point_fn* at every point; results in grid order.

    Parameters
    ----------
    point_fn:
        ``f(params, seed) -> result``.  Must be picklable (module
        level) when ``workers`` is set; checked up front so the
        failure is a clear :class:`TypeError` instead of a hang or an
        opaque traceback from a worker.
    points:
        Parameter dicts, e.g. from :func:`grid`.
    seed:
        Root seed; each point gets an independent child seed, the same
        ones whether the sweep runs serially or in parallel.
    workers:
        ``None`` (default) runs serially in-process; an integer runs
        that many worker processes.
    chunksize:
        Points dispatched to a worker per IPC round trip (parallel
        mode only).  Raise it when points are cheap and numerous so
        pickling overhead stops dominating.
    on_error:
        ``"raise"`` (default) propagates the first point exception,
        aborting the sweep.  ``"contain"`` catches it and puts a
        :class:`PointError` in that point's slot instead, so one
        pathological parameter combination cannot cost the other
        points' work.
    checkpoint:
        Optional path to a JSONL checkpoint file.  Every finished
        point is appended (and flushed) as it completes; re-running
        the same sweep (same ``len(points)`` and ``seed``) against an
        existing file re-runs only the points not yet on disk.  The
        header is validated, so resuming a *different* sweep against
        the file is a :class:`ValueError`.  Checkpointed results
        round-trip through JSON (tuples come back as lists), and
        results must be JSON-serializable.
    retry_errors:
        On resume, re-run points whose checkpoint record is an error
        instead of reloading them as :class:`PointError`.
    """
    points = [dict(p) for p in points]
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if on_error not in ("raise", "contain"):
        raise ValueError(f'on_error must be "raise" or "contain", got {on_error!r}')
    seeds = _point_seeds(seed, len(points))
    contain = on_error == "contain"

    results: List[Any] = [_PENDING] * len(points)
    writer = None
    if checkpoint is not None:
        path = Path(checkpoint)
        _load_checkpoint(path, len(points), seed, points, seeds, results, retry_errors)
        writer = _CheckpointWriter(path, len(points), seed)
    todo = [i for i, r in enumerate(results) if r is _PENDING]
    runner = functools.partial(_run_point, point_fn, contain)

    try:
        if workers is None:
            for i in todo:
                result = runner(i, points[i], seeds[i])
                results[i] = result
                if writer is not None:
                    writer.record(i, result)
            return results
        if workers < 1:
            raise ValueError("workers must be >= 1")
        try:
            pickle.dumps(point_fn)
        except Exception as exc:
            raise TypeError(
                f"point_fn {point_fn!r} is not picklable, so it cannot be shipped "
                "to worker processes. Define it at module level (not a lambda, "
                "closure or local function), or run with workers=None."
            ) from exc
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if writer is None:
                out = pool.map(
                    runner,
                    todo,
                    [points[i] for i in todo],
                    [seeds[i] for i in todo],
                    chunksize=chunksize,
                )
                for i, result in zip(todo, out):
                    results[i] = result
            else:
                # Checkpointing wants every completion on disk as soon
                # as it happens (that is the whole point of resuming a
                # killed run), so dispatch per-point futures instead of
                # the chunked map.
                futures = {pool.submit(runner, i, points[i], seeds[i]): i for i in todo}
                for fut in as_completed(futures):
                    i = futures[fut]
                    results[i] = fut.result()
                    writer.record(i, results[i])
        return results
    finally:
        if writer is not None:
            writer.close()
