"""Parameter sweeps with optional process parallelism.

Every paper experiment is an embarrassingly parallel sweep -- points
differ only in parameters and seed -- yet the drivers run serially so
their results stay bit-identical everywhere.  This module provides the
opt-in fast path: :func:`sweep` evaluates a point function over a
parameter grid, serially by default or across worker processes, with
deterministic per-point seeds derived from one root seed either way.

The point function must be a *module-level* callable (picklable) taking
``(params_dict, seed)``; results come back in grid order regardless of
completion order.
"""

from __future__ import annotations

import itertools
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["grid", "sweep"]


def grid(**axes: Sequence) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes, in document order.

    >>> grid(n_tags=[2, 3], d=[1.0])
    [{'n_tags': 2, 'd': 1.0}, {'n_tags': 3, 'd': 1.0}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    for name, values in axes.items():
        if len(values) == 0:
            raise ValueError(f"axis {name!r} is empty")
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _point_seeds(root_seed: int, n: int) -> List[int]:
    """Independent, reproducible per-point seeds."""
    seq = np.random.SeedSequence(root_seed)
    return [int(child.generate_state(1)[0]) for child in seq.spawn(n)]


def sweep(
    point_fn: Callable[[Dict[str, Any], int], Any],
    points: Sequence[Mapping[str, Any]],
    seed: int = 0,
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[Any]:
    """Evaluate *point_fn* at every point; results in grid order.

    Parameters
    ----------
    point_fn:
        ``f(params, seed) -> result``.  Must be picklable (module
        level) when ``workers`` is set; checked up front so the
        failure is a clear :class:`TypeError` instead of a hang or an
        opaque traceback from a worker.
    points:
        Parameter dicts, e.g. from :func:`grid`.
    seed:
        Root seed; each point gets an independent child seed, the same
        ones whether the sweep runs serially or in parallel.
    workers:
        ``None`` (default) runs serially in-process; an integer runs
        that many worker processes.
    chunksize:
        Points dispatched to a worker per IPC round trip (parallel
        mode only).  Raise it when points are cheap and numerous so
        pickling overhead stops dominating.
    """
    points = list(points)
    seeds = _point_seeds(seed, len(points))
    if workers is None:
        return [point_fn(dict(p), s) for p, s in zip(points, seeds)]
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    try:
        pickle.dumps(point_fn)
    except Exception as exc:
        raise TypeError(
            f"point_fn {point_fn!r} is not picklable, so it cannot be shipped "
            "to worker processes. Define it at module level (not a lambda, "
            "closure or local function), or run with workers=None."
        ) from exc
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(point_fn, [dict(p) for p in points], seeds, chunksize=chunksize)
        )
