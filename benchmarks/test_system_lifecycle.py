"""Benchmark: the full deployment life cycle (CbmaSystem).

Not a paper figure -- the integration the paper's conclusion gestures
at: a population larger than the concurrent-decode capacity, served by
rotating groups with cached power control, under mild mobility.  The
benchmark asserts the end-to-end health conditions a deployment would
be judged on: no starved tags, high fairness, bounded network-wide FER,
and that link adaptation picks a sensible spreading factor for the
conditions.
"""

import numpy as np
from conftest import scaled

from repro.analysis import format_percent, render_table
from repro.channel.geometry import Deployment, Room
from repro.channel.mobility import RandomWalk
from repro.mac.link_adaptation import SpreadingFactorController
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.system import CbmaSystem


def test_system_lifecycle(run_once, report):
    def lifecycle():
        dep = Deployment.random(
            12, rng=17, room=Room(width=1.8, depth=1.4), min_spacing=0.12
        )
        system = CbmaSystem(
            CbmaConfig(n_tags=4, seed=17),
            dep,
            mobility=RandomWalk(step_sigma_m=0.02),
        )
        # Starvation is only assessable once every tag has had a fair
        # chance: keep at least ~3 full population rotations.
        epochs = max(scaled(15), 10)
        reports = system.run(epochs, rounds_per_epoch=scaled(12))
        return system, reports

    system, reports = run_once(lifecycle)

    fers = [r.fer for r in reports]
    report(
        render_table(
            ["metric", "value"],
            [
                ["population / group size", f"{system.population} / {system.config.n_tags}"],
                ["epochs", len(reports)],
                ["network-wide FER", format_percent(system.metrics.fer)],
                ["aggregate goodput", f"{system.metrics.goodput_bps / 1e3:.1f} kbps"],
                ["Jain fairness of air time", f"{system.fairness():.3f}"],
                ["starved tags", len(system.service_log.starved())],
                ["median epoch FER", f"{float(np.median(fers)):.3f}"],
            ],
            title="System life cycle: 12 tags, 4 concurrent, rotation + power control + mobility",
        )
    )

    assert system.service_log.starved() == [], "rotation must prevent starvation"
    assert system.fairness() > 0.8
    assert system.metrics.fer < 0.35
    assert system.metrics.goodput_bps > 0


def test_system_link_adaptation(run_once, report):
    """The adaptive spreading controller finds the goodput knee."""

    def adapt():
        results = {}
        for label, distance in (("benign (1 m)", 1.0), ("harsh (3.5 m)", 3.5)):
            def measure(length, rounds, _d=distance):
                cfg = CbmaConfig(n_tags=3, seed=29, code_length=int(length))
                net = CbmaNetwork(cfg, Deployment.linear(3, tag_to_rx=_d))
                return net.run_rounds(rounds).fer

            ctrl = SpreadingFactorController(lengths=(16, 32, 64, 128))
            results[label] = ctrl.run(
                measure,
                n_epochs=scaled(10),
                rounds_per_epoch=scaled(12),
                rng=np.random.default_rng(9),
            )
        return results

    results = run_once(adapt)
    rows = [
        [label, res.chosen_length, str(res.lengths_tried())]
        for label, res in results.items()
    ]
    report(
        render_table(
            ["channel", "chosen code length", "lengths measured"],
            rows,
            title="Link adaptation: spreading factor vs channel harshness",
        )
        + "\nShorter codes win where the channel allows (higher rate);"
        "\nharsher channels push the controller to longer codes."
    )
    assert results["harsh (3.5 m)"].chosen_length >= results["benign (1 m)"].chosen_length
