"""Benchmark: Table I -- CBMA next to prior backscatter systems.

Prints the paper's Table I verbatim alongside the simulated CBMA
operating points (aggregate goodput and FER per tag count), so the
claimed niche -- many concurrent tags at Mbps-class on-air rates and
metre-scale range -- is visible in one table.
"""

import numpy as np
from conftest import scaled

from repro.analysis import format_percent, render_table
from repro.mac.baselines.netscatter import NetscatterSimulator
from repro.sim.experiments import PRIOR_SYSTEMS_TABLE1, table1_system_comparison


def test_table1_system_comparison(run_once, report):
    def full_comparison():
        result = table1_system_comparison(tag_counts=(1, 2, 5, 10), rounds=scaled(40))
        # Simulated NetScatter at its published operating point:
        # 256 concurrent tags sharing ~1 MHz of chirp bandwidth.
        ns = NetscatterSimulator(n_tags=256, n_bins=256, snr_db=12.0).run(
            scaled(200), np.random.default_rng(0)
        )
        return result, ns

    result, ns = run_once(full_comparison)

    prior_rows = [[name, rate, tags, dist] for name, rate, tags, dist in PRIOR_SYSTEMS_TABLE1]
    prior_rows.append(
        [
            "NetScatter (simulated here)",
            f"{ns.goodput_bps() / 1e3:.0f} kbps raw OOK",
            ns.n_tags,
            "2 m (published)",
        ]
    )
    ours = []
    for n, goodput, fer in zip(
        result.x, result.series["aggregate goodput (bps)"], result.series["FER"]
    ):
        ours.append(
            [f"CBMA (simulated, {n} tags)", f"{goodput / 1e3:.1f} kbps goodput", n, "~1 m bench"]
        )

    report(
        render_table(
            ["system", "data rate", "tags", "distance"],
            prior_rows + ours,
            title="Table I reproduction: prior systems (paper) + our simulated CBMA",
        )
        + "\nPaper shape: CBMA is the only entry combining ~10 concurrent tags with"
        "\nMbps-class on-air rate at metre range (Netscatter has more tags but"
        "\n500 kbps total; BackFi has 5 Mbps but a single tag)."
    )

    # Shape assertions: goodput grows with concurrency.
    goodputs = result.series["aggregate goodput (bps)"]
    assert goodputs[-1] > goodputs[0], "10 tags should out-deliver 1 tag"
    # Run metadata travels with the result now.
    assert result.params["tag_counts"] == [1, 2, 5, 10]
    assert result.wall_time_s > 0
