"""Benchmark: Table II -- error rate vs two-tag power difference.

Reproduces the Sec. IV motivating measurement: pairs of tags at random
bench positions, each pair characterised by per-tag SNR, the relative
power difference (P_max - P_min)/P_max, and the resulting frame error
rate.  The paper's finding -- differences under ~10% give well under 1%
error, differences above ~50% give tens of percent -- is asserted as a
correlation between difference and error rate.
"""

import numpy as np
from conftest import scaled

from repro.analysis import format_percent, render_table
from repro.sim.experiments import table2_power_difference


def test_table2_power_difference(run_once, report):
    result = run_once(
        table2_power_difference,
        n_pairs=12,
        rounds=scaled(120),
    )

    rows = []
    for k in range(len(result.x)):
        rows.append(
            [
                result.x[k],
                f"{result.series['snr1_db'][k]:.1f}",
                f"{result.series['snr2_db'][k]:.1f}",
                format_percent(result.series["difference"][k]),
                format_percent(result.series["error_rate"][k]),
            ]
        )
    report(
        render_table(
            ["pair", "SNR1 (dB)", "SNR2 (dB)", "difference", "error rate"],
            rows,
            title="Table II reproduction: error rate vs power difference (2 tags)",
        )
        + "\nPaper shape: pairs with <10% power difference sit well below the"
        "\npairs with >50% difference (e.g. paper rows 0%->0.32% vs 68%->38%)."
    )

    diffs = np.array(result.series["difference"])
    errors = np.array(result.series["error_rate"])
    balanced = errors[diffs < 0.25]
    unbalanced = errors[diffs > 0.5]
    if balanced.size and unbalanced.size:
        assert balanced.mean() < unbalanced.mean(), (
            f"balanced pairs ({balanced.mean():.3f}) should out-perform "
            f"unbalanced ones ({unbalanced.mean():.3f})"
        )
    # Positive rank correlation between difference and error.
    if np.std(diffs) > 0 and np.std(errors) > 0:
        corr = np.corrcoef(diffs, errors)[0, 1]
        assert corr > 0.0, f"error should grow with power difference (corr={corr:.2f})"
