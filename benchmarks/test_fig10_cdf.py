"""Benchmark: Fig. 10 -- CDFs of error rate for three control strategies.

Random 5-tag deployments (with idle spare positions) are run with no
control, with power control, and with power control + tag selection.
Paper shape: the selection+control CDF dominates control alone, which
dominates no control; with control alone roughly 60% of deployments
reach error below 5% (we assert the ordering and that selection raises
the fraction of good deployments).
"""

import numpy as np
from conftest import scaled

from repro.analysis import cdf_at, empirical_cdf, render_series
from repro.sim.experiments import fig10_deployment_cdfs


def test_fig10_deployment_cdfs(run_once, report):
    result = run_once(
        fig10_deployment_cdfs,
        n_tags=5,
        n_groups=max(int(10 * __import__("conftest").bench_scale()), 6),
        rounds=scaled(30),
    )

    thresholds = (0.02, 0.05, 0.1, 0.2, 0.4)
    series = {
        label: [cdf_at(fers, t) for t in thresholds]
        for label, fers in result.series.items()
    }
    report(
        render_series(
            "P(FER <= x)", [f"x={t}" for t in thresholds], series,
            title="Fig. 10 reproduction: CDF of deployment error rate (5 tags)",
        )
        + "\nPaper shape: selection+control curve dominates control alone,"
        "\nwhich dominates no control; P(FER<5%) ~ 0.6 with control alone."
    )

    none_med = float(np.median(result.series["no control"]))
    pc_med = float(np.median(result.series["power control"]))
    sel_med = float(np.median(result.series["power control + tag selection"]))

    assert pc_med <= none_med + 0.02, "power control should improve the median deployment"
    assert sel_med <= pc_med + 0.02, "tag selection should further improve it"

    # Stochastic dominance at the paper's 5% operating point (with slack).
    p_none = cdf_at(result.series["no control"], 0.10)
    p_sel = cdf_at(result.series["power control + tag selection"], 0.10)
    assert p_sel >= p_none
