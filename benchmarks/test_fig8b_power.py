"""Benchmark: Fig. 8(b) -- frame error rate vs ES transmit power.

Excitation power swept from -5 dBm to 20 dBm in 5 dB steps for 2/3/4
tags.  Paper shape: error falls monotonically with power; at -5 dBm
the backscatter is buried in noise and the error rate is near 1.
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series
from repro.sim.experiments import fig8b_power


def test_fig8b_power(run_once, report):
    result = run_once(
        fig8b_power,
        tx_powers_dbm=(-5.0, 0.0, 5.0, 10.0, 15.0, 20.0),
        tag_counts=(2, 3, 4),
        rounds=scaled(80),
    )

    report(
        render_series(
            result.x_label, result.x, result.series,
            title="Fig. 8(b) reproduction: FER vs excitation power",
        )
        + "\nPaper shape: monotone decrease with power; near-total loss at -5 dBm."
    )

    for label, fers in result.series.items():
        fers = np.array(fers)
        assert fers[0] > 0.9, f"{label}: -5 dBm should be nearly dead (got {fers[0]:.2f})"
        assert fers[-1] < 0.25, f"{label}: 20 dBm should work (got {fers[-1]:.2f})"
        # Broad monotonicity: each point no worse than 0.15 above its
        # lower-power neighbour (Monte-Carlo slack).
        assert np.all(np.diff(fers) < 0.15), f"{label}: error should fall with power"
