"""Benchmarks for the library's beyond-the-paper extensions.

Quantifies what each optional subsystem buys, so DESIGN.md's extension
claims are backed by numbers:

- SIC receiver vs the paper's plain receiver under near-far collisions
  (how much of tag-side power control a smarter receiver replaces);
- 2-antenna MRC vs one antenna under fading;
- Hamming FEC at the FER knee;
- ARQ latency/delivery under Poisson load;
- rotating group scheduling vs greedy selection fairness.
"""

import numpy as np
from conftest import scaled

from repro.analysis import format_percent, render_table
from repro.channel.fading import FadingModel
from repro.channel.geometry import Deployment
from repro.channel.noise import NoiseModel
from repro.codes import twonc_codes
from repro.codes.fec import BlockInterleaver, FecPipeline, HammingCode
from repro.mac.arq import ArqSimulator
from repro.mac.fairness import RotatingGroupScheduler, ServiceLog
from repro.receiver import CbmaReceiver, DiversityReceiver
from repro.receiver.sic import SicReceiver
from repro.sim.collision import CollisionScenario, simulate_diversity_round, simulate_round
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.sim.traffic import PoissonArrivals
from repro.tag import Tag, TagOscillator
from repro.utils.bits import bytes_to_bits, bits_to_bytes


def test_extension_sic_near_far(run_once, report):
    """SIC recovers near-far victims the plain receiver loses."""

    def sweep():
        codes = twonc_codes(2, 64)
        plain = CbmaReceiver({i: codes[i] for i in range(2)}, samples_per_chip=2)
        sic = SicReceiver({i: codes[i] for i in range(2)}, samples_per_chip=2)
        rng = np.random.default_rng(3)
        noise = NoiseModel()
        out = {}
        for gap_db in (6, 12, 18):
            ok = {"plain": 0, "SIC": 0}
            n_trials = scaled(30)
            for _ in range(n_trials):
                tags = [
                    Tag(i, codes[i], oscillator=TagOscillator(offset_chips=float(rng.uniform(0, 8))))
                    for i in range(2)
                ]
                strong = np.sqrt(noise.power_w * 10 ** (18 / 10)) / 0.432
                weak = strong * 10 ** (-gap_db / 20)
                amps = [strong * np.exp(1j * rng.uniform(0, 6.28)), weak * np.exp(1j * rng.uniform(0, 6.28))]
                scen = CollisionScenario(tags=tags, amplitudes=amps, noise=noise, samples_per_chip=2)
                payloads = {i: bytes(rng.integers(0, 256, 16, dtype=np.uint8)) for i in range(2)}
                iq, _ = simulate_round(scen, payloads, rng)
                ok["plain"] += plain.process(iq).decoded_payloads().get(1) == payloads[1]
                ok["SIC"] += sic.process(iq).decoded_payloads().get(1) == payloads[1]
            out[gap_db] = {k: v / n_trials for k, v in ok.items()}
        return out

    results = run_once(sweep)
    rows = [
        [f"{gap} dB", format_percent(r["plain"]), format_percent(r["SIC"])]
        for gap, r in results.items()
    ]
    report(
        render_table(
            ["power gap", "plain receiver (weak-tag delivery)", "SIC receiver"],
            rows,
            title="Extension: successive interference cancellation vs near-far",
        )
        + "\nSIC is the receiver-side alternative to the paper's tag-side power"
        "\ncontrol; it needs no tag hardware but only works when the strong"
        "\nframe itself decodes."
    )
    assert results[18]["SIC"] > results[18]["plain"] + 0.3


def test_extension_mrc_diversity(run_once, report):
    """2-antenna MRC under fading vs a single antenna."""

    def sweep():
        codes = twonc_codes(3, 64)
        rx1 = CbmaReceiver({i: codes[i] for i in range(3)}, samples_per_chip=2)
        rx2 = DiversityReceiver({i: codes[i] for i in range(3)}, samples_per_chip=2, n_antennas=2)
        rng = np.random.default_rng(8)
        noise = NoiseModel()
        fad = FadingModel(k_factor=3.0, shadowing_sigma_db=0.0)
        amp = np.sqrt(noise.power_w * 10 ** (-8 / 10)) / 0.432
        ok1 = ok2 = tot = 0
        for _ in range(scaled(40)):
            tags = [
                Tag(i, codes[i], oscillator=TagOscillator(offset_chips=float(rng.uniform(0, 8))))
                for i in range(3)
            ]
            scen = CollisionScenario(tags=tags, amplitudes=[amp] * 3, noise=noise, samples_per_chip=2)
            payloads = {i: bytes(rng.integers(0, 256, 16, dtype=np.uint8)) for i in range(3)}
            gains = np.array([[fad.sample_gain(rng) for _ in range(3)] for _ in range(2)])
            branches, _ = simulate_diversity_round(scen, payloads, gains, rng)
            d1 = rx1.process(branches[0]).decoded_payloads()
            d2 = rx2.process_branches(branches).decoded_payloads()
            for i in range(3):
                tot += 1
                ok1 += d1.get(i) == payloads[i]
                ok2 += d2.get(i) == payloads[i]
        return 1 - ok1 / tot, 1 - ok2 / tot

    fer1, fer2 = run_once(sweep)
    report(
        render_table(
            ["receiver", "FER (3 tags, Rician K=3, knee SNR)"],
            [["1 antenna", f"{fer1:.4f}"], ["2-antenna MRC", f"{fer2:.4f}"]],
            title="Extension: receive diversity",
        )
    )
    assert fer2 < fer1


def test_extension_fec_at_knee(run_once, report):
    """Hamming(7,4)+interleaving on payload bits near the FER knee."""

    def sweep():
        pipe = FecPipeline(HammingCode(), BlockInterleaver(depth=8))
        coded_bits = pipe.encoded_length(56)  # 7 data bytes -> 104 bits
        cfg = CbmaConfig(n_tags=3, seed=19, payload_bytes=coded_bits // 8)
        net = CbmaNetwork(cfg, Deployment.linear(3, tag_to_rx=4.0))
        rng = np.random.default_rng(4)
        raw_ok = fec_ok = tot = 0
        for _ in range(scaled(60)):
            net._draw_oscillators()
            amps = net._base_amplitudes()
            scen = CollisionScenario(
                tags=net.tags, amplitudes=amps, noise=cfg.noise,
                samples_per_chip=cfg.samples_per_chip, chip_rate_hz=cfg.chip_rate_hz,
            )
            # 7 data bytes, FEC-expanded to coded_bits on the air.
            data = {i: bytes(rng.integers(0, 256, 7, dtype=np.uint8)) for i in range(3)}
            payloads = {
                i: bits_to_bytes(pipe.encode(bytes_to_bits(d))) for i, d in data.items()
            }
            iq, _ = simulate_round(scen, payloads, rng)
            rep = net.receiver.process(iq)
            for i in range(3):
                tot += 1
                frame = rep.frame_for(i)
                if frame is None:
                    continue
                raw_ok += bool(frame.success and frame.payload == payloads[i])
                if frame.raw_bits is not None and frame.reason in ("ok", "crc"):
                    # FEC decodes even CRC-failed frames: correct the
                    # payload region and compare to the data bits.
                    body = frame.raw_bits[8:]  # skip length field
                    coded = body[:coded_bits]
                    if coded.size == coded_bits:
                        decoded, _ = pipe.decode(coded, 56)
                        fec_ok += bits_to_bytes(decoded) == data[i]
        return 1 - raw_ok / tot, 1 - fec_ok / tot

    raw_fer, fec_fer = run_once(sweep)
    report(
        render_table(
            ["scheme", "frame loss (3 tags at 4.0 m)"],
            [
                ["CRC only (paper)", f"{raw_fer:.4f}"],
                ["Hamming(7,4) + interleaving", f"{fec_fer:.4f}"],
            ],
            title="Extension: payload FEC at the knee (rate-4/7 overhead)",
        )
        + "\nFEC repairs frames the CRC would discard; the tag-side cost is"
        "\na few XORs per nibble."
    )
    # FEC can only help: every CRC-only success is also an FEC success,
    # and scattered 1-2 bit CRC failures get repaired.
    assert fec_fer <= raw_fer + 1e-9


def test_extension_arq_latency(run_once, report):
    """Delivery and latency under Poisson load with stop-and-wait ARQ."""

    def sweep():
        out = {}
        for label, load in (("20% load", 0.2), ("60% load", 0.6), ("120% load", 1.2)):
            cfg = CbmaConfig(n_tags=4, seed=23, payload_bytes=12)
            net = CbmaNetwork(cfg, Deployment.linear(4, tag_to_rx=1.0))
            rate = load / cfg.frame_duration_s()
            sim = ArqSimulator(net, PoissonArrivals(rate))
            stats = sim.run(scaled(100), rng=np.random.default_rng(6))
            out[label] = stats
        return out

    results = run_once(sweep)
    rows = []
    for label, stats in results.items():
        rows.append(
            [
                label,
                stats.offered,
                format_percent(stats.delivery_ratio),
                f"{stats.mean_latency_s * 1e3:.1f} ms",
                f"{stats.p95_latency_s * 1e3:.1f} ms",
                f"{stats.mean_attempts:.2f}",
            ]
        )
    report(
        render_table(
            ["offered load", "messages", "delivered", "mean latency", "p95 latency", "attempts/msg"],
            rows,
            title="Extension: stop-and-wait ARQ over CBMA (4 tags)",
        )
    )
    assert results["20% load"].delivery_ratio > 0.9
    assert results["120% load"].mean_latency_s >= results["20% load"].mean_latency_s


def test_extension_fairness(run_once, report):
    """Rotating group scheduling removes selection starvation."""

    def sweep():
        dep = Deployment.random(10, rng=31)
        sched = RotatingGroupScheduler(dep, group_size=4)
        log = ServiceLog(n_tags=10)
        rng = np.random.default_rng(31)
        for _ in range(scaled(150)):
            log.record_epoch(sched.next_group(rng), {})
        # Greedy alternative: always schedule the 4 strongest positions.
        from repro.channel.pathloss import LinkBudget
        from repro.mac.node_selection import NodeSelector

        selector = NodeSelector(deployment=dep, budget=LinkBudget())
        strongest = sorted(range(10), key=selector.strength_dbm, reverse=True)[:4]
        greedy = ServiceLog(n_tags=10)
        for _ in range(scaled(150)):
            greedy.record_epoch(strongest, {})
        return log, greedy

    rotating, greedy = run_once(sweep)
    report(
        render_table(
            ["scheduler", "Jain fairness", "starved tags (<5% share)"],
            [
                ["strongest-4 (greedy)", f"{greedy.fairness():.3f}", len(greedy.starved())],
                ["rotating (aged weights)", f"{rotating.fairness():.3f}", len(rotating.starved())],
            ],
            title="Extension: starvation (paper Sec. VIII-D) under two schedulers",
        )
    )
    assert rotating.fairness() > greedy.fairness()
    assert rotating.starved() == []


def test_extension_mobility_alleviates_bad_positions(run_once, report):
    """Sec. VIII-D: 'if the tag is moving, the starvation problem can be
    alleviated' -- a tag stuck at a hopeless position recovers once it
    wanders, without any scheduling intervention."""

    def sweep():
        from repro.channel.geometry import Point, Room
        from repro.channel.mobility import RandomWaypoint

        out = {}
        for label, mobility in (
            ("static", None),
            ("random waypoint", RandomWaypoint(speed_range_mps=(0.4, 0.8), pause_s=0.0)),
        ):
            room = Room(width=5.0, depth=3.0)
            dep = Deployment(room=room)
            dep.tags = [Point(2.2, 1.2), Point(0.0, 0.3), Point(0.3, -0.3)]
            cfg = CbmaConfig(n_tags=3, seed=43)
            net = CbmaNetwork(cfg, dep)
            rng = np.random.default_rng(43)
            from repro.sim.metrics import MetricsAccumulator

            halves = []
            for half in range(2):
                acc = MetricsAccumulator()
                for _ in range(scaled(30)):
                    net.run_round(metrics=acc)
                    if mobility is not None:
                        mobility.update(dep, dt_s=2.0, rng=rng)
                halves.append(
                    acc.per_tag_correct.get(0, 0) / max(acc.per_tag_sent.get(0, 0), 1)
                )
            out[label] = halves
        return out

    results = run_once(sweep)
    rows = [
        [label, format_percent(h[0]), format_percent(h[1])]
        for label, h in results.items()
    ]
    report(
        render_table(
            ["scenario", "bad tag delivery (first half)", "(second half)"],
            rows,
            title="Extension: mobility vs a hopeless tag position (Sec. VIII-D)",
        )
        + "\nThe static tag stays dead; the moving tag's delivery recovers as"
        "\nit wanders into workable geometry."
    )
    static = results["static"]
    moving = results["random waypoint"]
    assert static[1] < 0.5, "static far tag should stay bad"
    assert moving[1] > static[1], "mobility should help the bad tag"


def test_extension_unslotted_operation(run_once, report):
    """Fully round-free CBMA: the 'distributed manner' requirement taken
    to its logical end.  Frames start whenever each tag's own traffic
    says to; overlaps are partial and arbitrary.  Code-domain capture
    keeps delivery graceful where pure ALOHA would collapse."""

    def sweep():
        from repro.receiver.streaming import StreamingReceiver
        from repro.sim.unslotted import UnslottedScenario, simulate_unslotted
        from repro.tag import FrameFormat, Tag
        from repro.codes import twonc_codes

        n = 3
        codes = twonc_codes(n, 64)
        fmt = FrameFormat()
        noise = NoiseModel()
        amp = np.sqrt(noise.power_w * 10 ** (10 / 10)) / 0.432
        rx = CbmaReceiver({i: codes[i] for i in range(n)}, fmt=fmt, samples_per_chip=2)
        stream = StreamingReceiver(rx, max_frame_bits=fmt.frame_bits(12))
        frame_s = fmt.frame_bits(12) * 64 / 1e6
        out = {}
        for load in (0.1, 0.4, 0.8):  # per-tag offered load in frame airtimes
            tags = [Tag(i, codes[i], fmt=fmt) for i in range(n)]
            scn = UnslottedScenario(
                tags=tags, amplitudes=[amp] * n, rate_hz=load / frame_s,
                duration_s=max(0.2, 0.5 * __import__("conftest").bench_scale()),
                noise=noise,
            )
            res = simulate_unslotted(scn, stream, np.random.default_rng(11))
            out[load] = res
        return out

    results = run_once(sweep)
    rows = [
        [
            f"{load:.1f} frames/airtime/tag",
            res.offered,
            format_percent(res.delivery_ratio),
            f"{res.goodput_bps / 1e3:.1f} kbps",
        ]
        for load, res in results.items()
    ]
    report(
        render_table(
            ["offered load", "frames", "delivered", "goodput"],
            rows,
            title="Extension: fully unslotted CBMA (3 tags, no shared timing)",
        )
        + "\nSlotted ALOHA peaks at 37% channel use and collapses beyond;"
        "\nCBMA's code-domain capture keeps unslotted delivery graceful."
    )
    light = results[0.1]
    heavy = results[0.8]
    assert light.delivery_ratio > 0.7
    assert heavy.delivery_ratio > 0.4, "capture should prevent ALOHA-style collapse"


def test_extension_phase_tracking_cfo(run_once, report):
    """Carrier-frequency-offset tolerance: a static channel estimate
    dies within one constellation turn; decision-directed tracking
    follows the rotation (why real receivers do carrier recovery)."""

    def sweep():
        from repro.receiver import PhaseTrackingReceiver

        out = {}
        for cfo_sigma in (0.0, 100.0, 400.0):
            cfg = CbmaConfig(n_tags=2, seed=3, cfo_hz_sigma=cfo_sigma)
            net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
            plain_fer = net.run_rounds(scaled(40)).fer
            net2 = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
            net2.receiver = PhaseTrackingReceiver(
                net2.receiver.codes, fmt=net2.fmt, samples_per_chip=2
            )
            track_fer = net2.run_rounds(scaled(40)).fer
            out[cfo_sigma] = (plain_fer, track_fer)
        return out

    results = run_once(sweep)
    rows = [
        [f"{s:.0f} Hz ({s / 20:.0f} ppm of 20 MHz)", f"{p:.4f}", f"{t:.4f}"]
        for s, (p, t) in results.items()
    ]
    report(
        render_table(
            ["CFO sigma", "static-estimate FER", "phase-tracking FER"],
            rows,
            title="Extension: carrier frequency offset and phase tracking",
        )
        + "\nEven crystal-grade ppm error rotates the constellation several"
        "\nturns per frame; the tracking loop makes it nearly free."
    )
    assert results[400.0][0] > 0.5, "CFO should defeat the static estimate"
    assert results[400.0][1] < 0.2, "tracking should survive crystal-grade CFO"
    assert results[0.0][1] <= results[0.0][0] + 0.05
