"""Benchmark: Fig. 8(c) -- frame error rate vs preamble length.

Preamble swept over 4..64 bits for 2/3/4 tags at a distance past the
knee, where synchronisation quality dominates.  Paper shape: FER falls
with preamble length; with 64 bits even the 4-tag collision decodes
almost always (paper: below 1%).
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series
from repro.sim.experiments import fig8c_preamble


def test_fig8c_preamble(run_once, report):
    result = run_once(
        fig8c_preamble,
        preamble_bits=(4, 8, 16, 32, 64),
        tag_counts=(2, 3, 4),
        rounds=scaled(80),
    )

    report(
        render_series(
            result.x_label, result.x, result.series,
            title="Fig. 8(c) reproduction: FER vs preamble length",
        )
        + "\nPaper shape: monotone improvement with preamble length;"
        "\n64-bit preamble pushes even the 4-tag case to ~1%."
    )

    for label, fers in result.series.items():
        fers = np.array(fers)
        assert fers[0] >= fers[-1] - 0.02, f"{label}: longer preamble should help"
        assert fers[-1] < 0.15, f"{label}: 64-bit preamble too lossy ({fers[-1]:.2f})"

    # The shortest preamble is clearly worse for the larger collisions.
    four = np.array(result.series["4 tags"])
    assert four[0] > four[-1] * 1.3, "4 tags: 4-bit preamble should clearly trail 64-bit"

