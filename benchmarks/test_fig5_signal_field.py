"""Benchmark: Fig. 5 -- theoretical backscatter signal strength field.

Evaluates Friis eq. (1) over the bench plane with the ES at (-0.5, 0)
and the RX at (+0.5, 0), prints an ASCII rendering of the field and a
cut along the device axis, and asserts the Fig. 5 shape: strength peaks
for tags near either device and decays toward the room's edges.
"""

import numpy as np

from repro.sim.experiments import fig5_signal_field


def _ascii_field(field, levels=" .:-=+*#%@"):
    lo, hi = field.min(), field.max()
    idx = ((field - lo) / max(hi - lo, 1e-9) * (len(levels) - 1)).astype(int)
    return "\n".join("".join(levels[v] for v in row) for row in idx[::-1])


def test_fig5_signal_field(run_once, report):
    result = run_once(fig5_signal_field, resolution=41)
    xs = result.artifacts["xs"]
    ys = result.artifacts["ys"]
    field = result.artifacts["field_dbm"]

    centre_cut = field[ys.size // 2]
    cut_rows = "  ".join(
        f"x={x:+.1f}:{v:.0f}dBm" for x, v in zip(xs[::8], centre_cut[::8])
    )
    report(
        "Fig. 5 reproduction: theoretical received signal strength (dBm)\n"
        + _ascii_field(field)
        + f"\naxis cut: {cut_rows}"
        + f"\nfield range: {field.min():.1f} .. {field.max():.1f} dBm"
        + "\nPaper shape: bright lobes around the excitation source and receiver,"
        "\nfalling off with the product of the squared distances."
    )

    mid_y = ys.size // 2
    # Peak strength lies near the devices (|x| ~ 0.5), not at the rim.
    peak_ix = int(np.argmax(field[mid_y]))
    assert abs(abs(xs[peak_ix]) - 0.5) < 0.35

    # Monotone decay along +x beyond the receiver.
    beyond = centre_cut[xs > 0.7]
    assert np.all(np.diff(beyond) < 0)

    # Symmetry of the symmetric layout.
    assert np.allclose(field, field[:, ::-1], atol=1e-6)
