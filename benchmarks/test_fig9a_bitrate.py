"""Benchmark: Fig. 9(a) -- frame error rate vs tag bit rate.

Bit (chip) rate swept 250 kbps .. 5 Mbps for 2/3/4 tags against a
receiver with a bounded sampling rate (10 MS/s): faster keying means
fewer samples per chip and a wider noise bandwidth.  Paper shape: FER
grows with bit rate yet stays usable ("fairly decent") at 5 Mbps.
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series
from repro.sim.experiments import fig9a_bitrate


def test_fig9a_bitrate(run_once, report):
    result = run_once(
        fig9a_bitrate,
        bitrates_hz=(250e3, 500e3, 1e6, 2.5e6, 5e6),
        tag_counts=(2, 3, 4),
        rounds=scaled(80),
    )

    xs = [f"{int(b/1e3)}k" for b in result.x]
    report(
        render_series(
            "bit rate", xs, result.series,
            title="Fig. 9(a) reproduction: FER vs bit rate (RX sampling capped at 10 MS/s)",
        )
        + "\nPaper shape: error grows with keying rate (fewer samples per chip,"
        "\nwider noise bandwidth) but 5 Mbps is still usable."
    )

    for label, fers in result.series.items():
        fers = np.array(fers)
        assert fers[-1] >= fers[0] - 0.03, f"{label}: faster keying should not be cheaper"
        assert fers[-1] < 0.6, f"{label}: 5 Mbps should remain usable ({fers[-1]:.2f})"
