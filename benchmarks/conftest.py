"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and
prints the rows/series it reports (run pytest with ``-s`` to see them;
they are also appended to ``benchmarks/results.txt``).

Scale the workload with the environment variable ``REPRO_BENCH_SCALE``
(default 1.0): 0.2 gives a fast smoke run, 5.0 approaches the paper's
1000-packets-per-point fidelity.
"""

import os
from pathlib import Path

import pytest

_RESULTS_PATH = Path(__file__).with_name("results.txt")


def bench_scale() -> float:
    """Workload multiplier from REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 5) -> int:
    """Scale a round count, keeping at least *minimum*."""
    return max(int(n * bench_scale()), minimum)


@pytest.fixture
def report():
    """Print a result block and append it to benchmarks/results.txt."""

    def _report(text: str) -> None:
        block = "\n" + text + "\n"
        print(block)
        with open(_RESULTS_PATH, "a") as fh:
            fh.write(block)

    return _report


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing.

    Paper experiments are deterministic given their seed; repeating
    them only to improve timing statistics would multiply a multi-
    minute workload, so each benchmark is a single timed run.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
