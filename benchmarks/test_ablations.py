"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not paper figures -- these quantify the simulator's own knobs so a
downstream user knows what each fidelity/design decision buys:

- oversampling factor (samples per chip) vs decode error;
- spreading-code length vs error and effective per-tag rate;
- impedance-codebook size (2 vs 4 states) vs power-control benefit;
- node-selection acceptance rule (greedy vs annealing) vs final FER.
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series, render_table
from repro.channel.geometry import Deployment, Room
from repro.mac.node_selection import NodeSelector
from repro.mac.power_control import PowerController
from repro.phy.impedance import ImpedanceCodebook, PAPER_TERMINATIONS
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.tag.tag import Tag


def test_ablation_oversampling(run_once, report):
    """Higher samples-per-chip resolves fractional asynchrony better."""

    def sweep():
        out = {}
        for spc in (1, 2, 4):
            cfg = CbmaConfig(n_tags=4, seed=17, samples_per_chip=spc)
            net = CbmaNetwork(cfg, Deployment.linear(4, tag_to_rx=1.5))
            out[spc] = net.run_rounds(scaled(60)).fer
        return out

    fers = run_once(sweep)
    report(
        render_table(
            ["samples per chip", "FER"],
            [[k, f"{v:.4f}"] for k, v in fers.items()],
            title="Ablation: oversampling factor (4 tags, 1.5 m)",
        )
    )
    assert fers[4] <= fers[1] + 0.05, "more oversampling should not hurt"


def test_ablation_code_length(run_once, report):
    """Longer codes trade rate for MAI robustness."""

    def sweep():
        out = {}
        for length in (32, 64, 128):
            cfg = CbmaConfig(n_tags=5, seed=23, code_length=length)
            net = CbmaNetwork(cfg, Deployment.linear(5, tag_to_rx=1.0))
            m = net.run_rounds(scaled(50))
            out[length] = (m.fer, m.goodput_bps)
        return out

    results = run_once(sweep)
    report(
        render_table(
            ["code length (chips)", "FER", "aggregate goodput"],
            [
                [k, f"{fer:.4f}", f"{gp / 1e3:.1f} kbps"]
                for k, (fer, gp) in results.items()
            ],
            title="Ablation: spreading-code length (5 tags, 1 m)",
        )
        + "\nLonger codes suppress multi-access interference at the cost of"
        "\nper-bit air time; the goodput optimum sits where the FER knee ends."
    )
    assert results[128][0] <= results[32][0] + 0.03, "longer codes should reduce FER"


def test_ablation_codebook_size(run_once, report):
    """A 2-state impedance ladder gives power control less authority."""

    def sweep():
        room = Room(width=1.6, depth=1.2)
        full = ImpedanceCodebook(PAPER_TERMINATIONS)
        two_state = ImpedanceCodebook(PAPER_TERMINATIONS[1:3])
        out = {}
        for label, codebook in (("4 states", full), ("2 states", two_state)):
            fers = []
            for s in range(4):
                dep = Deployment.random(4, rng=300 + s, room=room, min_spacing=0.15)
                cfg = CbmaConfig(n_tags=4, seed=300 + s)
                net = CbmaNetwork(cfg, dep)
                for i, tag in enumerate(net.tags):
                    net.tags[i] = Tag(
                        tag.tag_id, tag.code, fmt=tag.fmt, codebook=codebook
                    )
                net.run_power_control(PowerController(packets_per_epoch=6))
                fers.append(net.run_rounds(scaled(25)).fer)
            out[label] = float(np.mean(fers))
        return out

    results = run_once(sweep)
    report(
        render_table(
            ["impedance codebook", "post-control FER"],
            [[k, f"{v:.4f}"] for k, v in results.items()],
            title="Ablation: impedance codebook size (4 tags, random bench)",
        )
    )
    assert results["4 states"] <= results["2 states"] + 0.08


def test_ablation_selection_schedule(run_once, report):
    """Greedy-only vs annealing acceptance in node selection."""

    def sweep():
        room = Room(width=1.6, depth=1.2)
        out = {}
        for label, temp in (("greedy (T=0)", 1e-6), ("annealing (T=6)", 6.0)):
            fers = []
            for s in range(4):
                dep = Deployment.random(8, rng=400 + s, room=room, min_spacing=0.12)
                cfg = CbmaConfig(n_tags=4, seed=400 + s)
                net = CbmaNetwork(cfg, dep)
                selector = NodeSelector(
                    deployment=dep, budget=cfg.budget, initial_temperature=temp
                )
                controller = PowerController(packets_per_epoch=6)
                net.run_power_control(controller)
                for _ in range(2):
                    probe = net.run_rounds(scaled(12))
                    ratios = [probe.per_tag_ack_ratio(t.tag_id) for t in net.tags]
                    outcome = selector.select_round(
                        net.positions, ratios, rng=np.random.default_rng(s)
                    )
                    net.positions = list(outcome.group)
                    net.run_power_control(controller)
                fers.append(net.run_rounds(scaled(25)).fer)
            out[label] = float(np.mean(fers))
        return out

    results = run_once(sweep)
    report(
        render_table(
            ["acceptance schedule", "final FER"],
            [[k, f"{v:.4f}"] for k, v in results.items()],
            title="Ablation: node-selection acceptance rule (4 of 8 positions)",
        )
        + "\nBoth schedules fix hopeless placements; annealing explores more"
        "\nearly, greedy converges faster when good positions are plentiful."
    )
    # Both must produce workable deployments.
    assert max(results.values()) < 0.5


def test_ablation_sideband(run_once, report):
    """Double- vs single-sideband backscatter link budget (footnote 1)."""
    import math

    from repro.phy.sideband import image_rejection_db, sideband_efficiency

    def sweep():
        rows = []
        rows.append(("DSB (paper's square wave)", sideband_efficiency(False), "-"))
        for err_deg in (0.0, 2.0, 10.0):
            eff = sideband_efficiency(True, phase_error_rad=math.radians(err_deg))
            irr = image_rejection_db(math.radians(err_deg)) if err_deg else float("inf")
            rows.append((f"SSB, {err_deg:.0f} deg quadrature error", eff, f"{irr:.0f} dB" if irr != float("inf") else "inf"))
        return rows

    rows = run_once(sweep)
    report(
        render_table(
            ["modulator", "fraction of power in wanted band", "image rejection"],
            [[n, f"{e:.3f}", i] for n, e, i in rows],
            title="Ablation: double- vs single-sideband backscatter",
        )
        + "\nThe paper's plain square-wave tag wastes half its reflected power"
        "\nin the unwatched image band; the ref. [10] quadrature trick"
        "\nrecovers it (+3 dB link budget) up to hardware matching error."
    )
    dsb = rows[0][1]
    ssb_perfect = rows[1][1]
    assert dsb == 0.5
    assert ssb_perfect > 0.99


def test_ablation_clock_imperfection(run_once, report):
    """Oscillator drift and jitter (the 'real imperfectness' of Sec. VIII-C).

    White per-chip jitter averages out across the 64-chip correlator;
    *drift* accumulates -- once the slip over a frame approaches one
    chip, the block-aligned decoder loses the frame entirely.  This is
    the quantitative case for crystal (not RC) tag clocks.
    """

    def sweep():
        out = {}
        cases = [
            ("ideal clock", dict()),
            ("jitter 0.1 chips RMS", dict(jitter_chips_rms=0.1)),
            ("drift 20 ppm (crystal)", dict(drift_ppm_sigma=20.0)),
            ("drift 100 ppm", dict(drift_ppm_sigma=100.0)),
            ("drift 1000 ppm (RC)", dict(drift_ppm_sigma=1000.0)),
        ]
        for label, knobs in cases:
            cfg = CbmaConfig(n_tags=3, seed=37, **knobs)
            net = CbmaNetwork(cfg, Deployment.linear(3, tag_to_rx=1.0))
            out[label] = net.run_rounds(scaled(50)).fer
        return out

    fers = run_once(sweep)
    report(
        render_table(
            ["clock model", "FER (3 tags, 1 m)"],
            [[k, f"{v:.4f}"] for k, v in fers.items()],
            title="Ablation: tag clock imperfection",
        )
        + "\nWhite jitter is nearly free (it averages over the correlator);"
        "\ndrift past ~1 chip of cumulative slip per frame is fatal --"
        "\nCBMA tags need crystal-grade clocks, as the prototype used."
    )
    assert fers["drift 20 ppm (crystal)"] < 0.2
    assert fers["drift 1000 ppm (RC)"] > 0.8
    assert fers["jitter 0.1 chips RMS"] < fers["drift 1000 ppm (RC)"]
