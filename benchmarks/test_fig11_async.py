"""Benchmark: Fig. 11 -- error rate under tag asynchrony.

Two tags with controlled clocks; tag 2's start is delayed from 0 to 4
chips.  Paper shape: the error rate is lowest when the tags are fully
synchronised and jumps to a fluctuating plateau (paper: ~0.04) for any
appreciable delay.
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series
from repro.sim.experiments import fig11_asynchrony


def test_fig11_asynchrony(run_once, report):
    delays = tuple(np.arange(0.0, 4.01, 0.5))
    result = run_once(
        fig11_asynchrony,
        delays_chips=delays,
        rounds=scaled(200),
    )

    report(
        render_series(
            result.x_label, [f"{d:.2f}" for d in result.x], result.series,
            title="Fig. 11 reproduction: error rate vs tag-2 clock delay",
        )
        + "\nPaper shape: minimum at perfect synchronisation, then a"
        "\nfluctuating plateau (paper ~0.04) once any delay exists."
    )

    fers = np.array(result.series["error rate"])
    synced = fers[0]
    plateau = fers[1:]

    assert synced <= plateau.mean() + 0.01, (
        f"synchronised case should be (near-)best: {synced:.3f} vs plateau {plateau.mean():.3f}"
    )
    # The plateau is nonzero but bounded -- asynchrony hurts, mildly
    # (paper's plateau fluctuates around 0.04).
    assert 0.005 < plateau.mean() < 0.15
    assert plateau.max() < 0.3
