"""Benchmark: Fig. 9(b) -- Gold vs 2NC spreading codes.

Error rate over 2..5 concurrent tags for both code families (averaged
over random bench placements).  Paper shape: error grows with the tag
count for both; 2NC stays at or below Gold, with Gold degrading
noticeably by 5 tags.
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series
from repro.sim.experiments import fig9b_pn_codes


def test_fig9b_pn_codes(run_once, report):
    result = run_once(
        fig9b_pn_codes,
        tag_counts=(2, 3, 4, 5),
        rounds=scaled(60),
        n_groups=5,
    )

    report(
        render_series(
            result.x_label, result.x, result.series,
            title="Fig. 9(b) reproduction: error rate, Gold-31 vs 2NC-64 codes",
        )
        + "\nPaper shape: both rise with tag count; 2NC <= Gold throughout,"
        "\nGold visibly worse by 5 tags (paper: Gold jumps to ~11%)."
    )

    gold = np.array(result.series["gold-31"])
    twonc = np.array(result.series["2nc-64"])

    # Error grows with tag count for both families (allow MC slack).
    assert gold[-1] > gold[0] - 0.02
    assert twonc[-1] > twonc[0] - 0.02

    # 2NC at least matches Gold on average and wins at 5 tags.
    assert twonc.mean() <= gold.mean() + 0.02
    assert twonc[-1] <= gold[-1] + 0.02
