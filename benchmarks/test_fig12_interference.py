"""Benchmark: Fig. 12 -- packet reception under four working conditions.

Fixed 3-tag placement under: clean channel, coexisting WiFi (CSMA/CA
bursts), coexisting Bluetooth (FHSS), and an OFDM excitation source.
Paper shape: WiFi/Bluetooth cost only a little PRR (their occupancy of
the narrow backscatter band is sparse); the intermittent OFDM
excitation costs a lot because the tags often have nothing to reflect.
"""

from conftest import scaled

from repro.analysis import format_percent, render_table
from repro.sim.experiments import fig12_working_conditions


def test_fig12_working_conditions(run_once, report):
    result = run_once(fig12_working_conditions, n_tags=3, rounds=scaled(150))

    prr = dict(zip(result.x, result.series["PRR"]))
    report(
        render_table(
            ["condition", "packet reception rate"],
            [[name, format_percent(v)] for name, v in prr.items()],
            title="Fig. 12 reproduction: PRR under working conditions (3 tags)",
        )
        + "\nPaper shape: clean >= WiFi ~ Bluetooth >> OFDM excitation."
    )

    clean = prr["no interference"]
    wifi = prr["WiFi interference"]
    bt = prr["Bluetooth interference"]
    ofdm = prr["OFDM excitation"]

    assert clean > 0.85, f"clean baseline unexpectedly lossy: {clean:.2f}"
    # WiFi/Bluetooth: slight degradation only.
    assert wifi >= clean - 0.15
    assert bt >= clean - 0.15
    # OFDM excitation: large drop.
    assert ofdm < clean - 0.3
    assert ofdm < min(wifi, bt)
