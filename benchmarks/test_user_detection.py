"""Benchmark: Sec. VII-B2 -- user-detection accuracy.

A 10-tag pool; each trial activates a random subset, and the receiver
(holding all 10 PN codes) must flag exactly the transmitting tags.
Paper result: 99.9% correct identification with the best frame
parameters.
"""

from conftest import scaled

from repro.analysis import format_percent, render_table
from repro.sim.experiments import user_detection_accuracy


def test_user_detection_accuracy(run_once, report):
    result = run_once(
        user_detection_accuracy,
        pool_size=10,
        n_trials=scaled(150),
    )

    m = result.metrics
    report(
        render_table(
            ["metric", "value"],
            [
                ["trial accuracy (exact active set)", format_percent(m["trial_accuracy"])],
                ["per-tag detection rate", format_percent(m["detection_rate"])],
                ["false decodes (silent tags ACKed)", int(m["false_decodes"])],
            ],
            title="User detection reproduction (10-tag pool, random subsets)",
        )
        + "\nPaper: 99.9% correct identification of the transmitting set."
    )

    assert m["detection_rate"] > 0.97
    assert m["trial_accuracy"] > 0.9
    assert m["false_decodes"] == 0


def test_user_detection_threshold_sweep(run_once, report):
    """Sweep the 'predetermined threshold' of paper Sec. III-B.

    Low thresholds admit correlation leakage from other tags (cheap --
    the CRC kills impostors); high thresholds start missing genuinely
    transmitting tags.  The shipped default (0.12) sits on the flat
    left shoulder of the miss curve.
    """
    import numpy as np

    from repro.channel.geometry import Deployment
    from repro.sim.network import CbmaConfig, CbmaNetwork

    def sweep():
        out = {}
        for threshold in (0.05, 0.12, 0.2, 0.3, 0.45):
            cfg = CbmaConfig(n_tags=6, seed=83, user_threshold=threshold)
            net = CbmaNetwork(cfg, Deployment.linear(6, tag_to_rx=1.0))
            metrics = net.run_rounds(scaled(60))
            out[threshold] = (metrics.detection_rate, metrics.fer)
        return out

    results = run_once(sweep)
    rows = [
        [t, f"{det:.4f}", f"{fer:.4f}"] for t, (det, fer) in results.items()
    ]
    report(
        render_table(
            ["threshold", "per-tag detection rate", "FER"],
            rows,
            title="User-detection threshold sweep (6 concurrent tags)",
        )
        + "\nThe default 0.12 sits left of the miss knee; pushing toward 0.45"
        "\nstarts dropping real tags (scores scale as ~0.7/sqrt(n_tags))."
    )
    assert results[0.12][0] > 0.97, "default threshold should detect nearly all"
    assert results[0.45][0] < results[0.12][0], "over-tight threshold must miss tags"
