"""Benchmark: the headline claims.

- "10-tag bit rate of 8 Mbps": ten concurrent tags keying at 800 kchip/s
  put 8 Mbps of OOK symbols on the air simultaneously.
- ">10x throughput over single-tag solutions": CBMA's aggregate goodput
  against (a) an idealised genie-scheduled single-tag TDMA and (b) the
  framed-slotted-ALOHA access that distributed single-tag systems must
  actually run (slot efficiency capped at 1/e).  The >10x holds against
  (b); against the genie it approaches N x (1 - FER).
"""

from conftest import scaled

from repro.analysis import render_table
from repro.sim.experiments import headline_throughput


def test_headline_throughput(run_once, report):
    result = run_once(headline_throughput, n_tags=10, rounds=scaled(50))
    m = result.metrics

    report(
        render_table(
            ["scheme", "aggregate goodput"],
            [
                ["CBMA, 10 concurrent tags", f"{m['cbma_bps'] / 1e3:.1f} kbps"],
                ["single-tag TDMA (genie scheduled)", f"{m['single_tag_bps'] / 1e3:.1f} kbps"],
                ["single-tag FSA (distributed)", f"{m['fsa_bps'] / 1e3:.1f} kbps"],
                ["FDMA (4 sub-channels)", f"{m['fdma_bps'] / 1e3:.1f} kbps"],
            ],
            title="Headline reproduction: 10-tag throughput comparison",
        )
        + f"\non-air OOK rate: {m['aggregate_raw_bps'] / 1e6:.1f} Mbps (paper: 8 Mbps)"
        + f"\n10-tag collision FER: {m['cbma_fer']:.3f}"
        + f"\nspeedup vs genie TDMA: {m['speedup_vs_single']:.1f}x"
        + f"\nspeedup vs FSA:        {m['speedup_vs_fsa']:.1f}x (paper: >10x vs single-tag solutions)"
    )

    assert m["aggregate_raw_bps"] == 8e6
    assert m["cbma_fer"] < 0.4
    assert m["speedup_vs_single"] > 5.0, f"only {m['speedup_vs_single']:.1f}x vs genie TDMA"
    assert m["speedup_vs_fsa"] > 10.0, f"only {m['speedup_vs_fsa']:.1f}x vs FSA"
    # FDMA cannot beat one full-band channel's goodput.
    assert m["fdma_bps"] <= m["single_tag_bps"] * 1.2
    # Run metadata travels with the result now.
    assert result.params["n_tags"] == 10 and result.wall_time_s > 0
