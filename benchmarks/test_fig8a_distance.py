"""Benchmark: Fig. 8(a) -- frame error rate vs tag-to-RX distance.

ES-to-tag fixed at 50 cm, receiver swept from 0.5 m to 4 m, for 2/3/4
concurrent tags.  Paper shape: FER approximately flat below ~2 m (level
set by the tag count), rising beyond.
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series
from repro.sim.experiments import fig8a_distance


def test_fig8a_distance(run_once, report):
    distances = tuple(np.arange(0.5, 4.01, 0.5))
    result = run_once(
        fig8a_distance,
        distances_m=distances,
        tag_counts=(2, 3, 4),
        rounds=scaled(80),
    )

    report(
        render_series(
            result.x_label, [f"{d:.1f}" for d in result.x], result.series,
            title="Fig. 8(a) reproduction: FER vs tag-to-RX distance",
        )
        + "\nPaper shape: flat below ~2 m at a level set by the tag count"
        "\n(2 < 3 < 4 tags), slowly rising beyond 2 m."
    )

    for label, fers in result.series.items():
        fers = np.array(fers)
        near = fers[np.array(result.x) <= 2.0]
        far = fers[np.array(result.x) >= 3.5]
        # Rising tail past the knee.
        assert far.mean() > near.mean(), f"{label}: no distance degradation"
        # Near region roughly flat (no catastrophic cliff before 2 m).
        assert near.max() - near.min() < 0.25, f"{label}: near region not flat"

    # More tags -> higher floor in the flat region.
    near_means = {
        label: np.array(fers)[np.array(result.x) <= 2.0].mean()
        for label, fers in result.series.items()
    }
    assert near_means["2 tags"] <= near_means["4 tags"] + 0.02
