"""Benchmark: Fig. 9(c) -- error rate with vs without power control.

For 2..5 tags, random bench placements are evaluated twice: tags left
on their power-up impedance state, and after Algorithm 1.  Paper shape:
both curves rise with the tag count; the power-controlled curve stays a
multiple below (paper: ~5x at 5 tags, controlled error under ~5%).
"""

import numpy as np
from conftest import scaled

from repro.analysis import render_series
from repro.sim.experiments import fig9c_power_control


def test_fig9c_power_control(run_once, report):
    result = run_once(
        fig9c_power_control,
        tag_counts=(2, 3, 4, 5),
        n_groups=max(int(6 * __import__("conftest").bench_scale()), 4),
        rounds=scaled(30),
    )

    report(
        render_series(
            result.x_label, result.x, result.series,
            title="Fig. 9(c) reproduction: FER with vs without power control",
        )
        + "\nPaper shape: without control the error climbs steeply with tag"
        "\ncount; with Algorithm 1 it stays a multiple lower (paper: ~5x at 5 tags)."
    )

    without = np.array(result.series["without power control"])
    with_pc = np.array(result.series["with power control"])

    # Uncontrolled error grows with tag count.
    assert without[-1] > without[0]
    # Power control helps at every tag count (small MC slack).
    assert np.all(with_pc <= without + 0.03)
    # And helps substantially at 5 tags.
    assert with_pc[-1] < without[-1] * 0.75, (
        f"power control should cut the 5-tag error: {without[-1]:.3f} -> {with_pc[-1]:.3f}"
    )
