"""Documentation consistency checks.

Docs drift is a bug class like any other: these tests compile every
Python block in the markdown docs, verify that every module the docs
name is importable, and that the README's example list matches the
examples directory.
"""

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def _python_blocks(markdown_path: Path):
    text = markdown_path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestDocCodeBlocks:
    @pytest.mark.parametrize(
        "doc", ["docs/usage.md", "README.md"], ids=["usage", "readme"]
    )
    def test_python_blocks_compile(self, doc):
        path = REPO / doc
        blocks = _python_blocks(path)
        assert blocks, f"{doc} should contain python examples"
        for i, block in enumerate(blocks):
            try:
                ast.parse(block)
            except SyntaxError as exc:  # pragma: no cover - failure path
                pytest.fail(f"{doc} block {i} does not parse: {exc}")

    def test_usage_blocks_import_cleanly(self):
        """Every import statement in the cookbook must resolve."""
        for block in _python_blocks(REPO / "docs" / "usage.md"):
            tree = ast.parse(block)
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    module = importlib.import_module(node.module)
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{node.module} has no attribute {alias.name}"
                        )
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        importlib.import_module(alias.name)


class TestDocModuleReferences:
    def test_api_index_modules_exist(self):
        text = (REPO / "docs" / "api.md").read_text()
        for match in sorted(set(re.findall(r"`(repro(?:\.\w+)+)\.", text))):
            # Factory entries read `repro.mod.Class.method(...)`; trim the
            # CamelCase class segment to get the importable module path.
            parts = match.split(".")
            while parts and parts[-1][0].isupper():
                parts.pop()
            importlib.import_module(".".join(parts))

    def test_design_extension_modules_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for match in sorted(set(re.findall(r"`(\w+(?:/\w+)*\.py)`", text))):
            in_package = (REPO / "src" / "repro" / match).exists()
            at_root = (REPO / match).exists()
            assert in_package or at_root, match


class TestReadmeExamples:
    def test_every_listed_example_exists(self):
        text = (REPO / "README.md").read_text()
        listed = set(re.findall(r"python (examples/\w+\.py)", text))
        assert listed, "README should list runnable examples"
        for rel in listed:
            assert (REPO / rel).exists(), f"README references missing {rel}"

    def test_every_example_file_is_listed(self):
        text = (REPO / "README.md").read_text()
        for path in (REPO / "examples").glob("*.py"):
            assert f"examples/{path.name}" in text, (
                f"examples/{path.name} missing from README"
            )
