"""Unit tests for repro.codes.properties and repro.codes.registry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.codes.properties import (
    analyze_family,
    balance,
    periodic_autocorrelation,
    periodic_crosscorrelation,
)
from repro.codes.registry import available_families, make_codes, register_family


class TestAutocorrelation:
    def test_zero_lag_is_one(self):
        rng = np.random.default_rng(0)
        code = rng.integers(0, 2, 32, dtype=np.uint8)
        ac = periodic_autocorrelation(code)
        assert ac[0] == pytest.approx(1.0)

    def test_symmetric(self):
        code = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        ac = periodic_autocorrelation(code)
        assert np.allclose(ac[1:], ac[1:][::-1])

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=32))
    def test_bounded(self, bits):
        ac = periodic_autocorrelation(np.array(bits, dtype=np.uint8))
        assert np.all(np.abs(ac) <= 1.0 + 1e-9)


class TestCrosscorrelation:
    def test_identical_codes_peak_one(self):
        code = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        cc = periodic_crosscorrelation(code, code)
        assert cc[0] == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            periodic_crosscorrelation(np.zeros(4, dtype=np.uint8), np.zeros(8, dtype=np.uint8))

    def test_negation_gives_minus_one(self):
        code = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        cc = periodic_crosscorrelation(code, 1 - code)
        assert cc[0] == pytest.approx(-1.0)


class TestBalance:
    def test_balanced(self):
        assert balance(np.array([1, 0, 1, 0])) == 0.0

    def test_all_ones(self):
        assert balance(np.ones(8, dtype=np.uint8)) == 1.0

    def test_all_zeros(self):
        assert balance(np.zeros(8, dtype=np.uint8)) == -1.0


class TestAnalyzeFamily:
    def test_report_fields(self):
        codes = make_codes("2nc", 4, 32)
        report = analyze_family(codes)
        assert report.size == 4
        assert report.length == 32
        assert 0 <= report.max_cross <= 1
        assert 0 <= report.max_offpeak_auto <= 1
        assert report.merit() > 0

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            analyze_family([])

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            analyze_family([np.zeros(8, dtype=np.uint8), np.zeros(16, dtype=np.uint8)])

    def test_single_code_no_cross(self):
        report = analyze_family([np.array([1, 0, 1, 0], dtype=np.uint8)])
        assert report.max_cross == 0.0


class TestRegistry:
    def test_families_available(self):
        fams = available_families()
        assert {"gold", "2nc", "walsh"} <= set(fams)

    def test_make_gold(self):
        codes = make_codes("gold", 3, 31)
        assert len(codes) == 3
        assert codes[0].size == 31

    def test_case_insensitive(self):
        assert len(make_codes("GOLD", 2, 31)) == 2

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown code family"):
            make_codes("nonesuch", 2, 31)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_family("gold", lambda c, l: [])
