"""Unit tests for repro.codes.lfsr."""

import numpy as np
import pytest

from repro.codes.lfsr import Lfsr, PREFERRED_PAIRS, PRIMITIVE_POLYNOMIALS, m_sequence


class TestLfsr:
    def test_period_property(self):
        assert Lfsr((5, 2)).period == 31

    def test_state_copy(self):
        reg = Lfsr((3, 1))
        state = reg.state
        state[0] = 99
        assert reg.state[0] != 99

    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            Lfsr((3, 1), state=[0, 0, 0])

    def test_wrong_state_length(self):
        with pytest.raises(ValueError):
            Lfsr((3, 1), state=[1, 0])

    def test_invalid_taps(self):
        with pytest.raises(ValueError):
            Lfsr(())

    def test_run_length(self):
        assert Lfsr((4, 1)).run(10).size == 10

    def test_run_negative(self):
        with pytest.raises(ValueError):
            Lfsr((4, 1)).run(-1)


class TestMSequence:
    @pytest.mark.parametrize("degree", sorted(PRIMITIVE_POLYNOMIALS))
    def test_all_catalogued_polynomials_are_primitive(self, degree):
        """Every listed polynomial must generate a maximal sequence."""
        for taps in PRIMITIVE_POLYNOMIALS[degree]:
            seq = m_sequence(taps)
            assert seq.size == (1 << degree) - 1

    def test_balance(self):
        """m-sequences contain exactly 2^(n-1) ones."""
        seq = m_sequence((5, 2))
        assert int(seq.sum()) == 16

    def test_run_property(self):
        """An m-sequence contains every non-zero n-tuple exactly once."""
        seq = m_sequence((4, 1))
        n = 4
        windows = set()
        ext = np.concatenate([seq, seq[: n - 1]])
        for i in range(seq.size):
            windows.add(tuple(ext[i : i + n]))
        assert len(windows) == seq.size
        assert (0,) * n not in windows

    def test_two_valued_autocorrelation(self):
        """Periodic autocorrelation is -1/N at every non-zero shift."""
        seq = m_sequence((5, 2)).astype(np.float64) * 2 - 1
        n = seq.size
        for shift in range(1, n):
            corr = float(np.dot(seq, np.roll(seq, shift)))
            assert corr == pytest.approx(-1.0)

    def test_non_primitive_rejected(self):
        # x^4 + x^2 + 1 = (x^2+x+1)^2 is not primitive.
        with pytest.raises(ValueError):
            m_sequence((4, 2))

    def test_preferred_pairs_subset_of_primitives(self):
        for degree, (u, v) in PREFERRED_PAIRS.items():
            assert u in PRIMITIVE_POLYNOMIALS[degree]
            assert v in PRIMITIVE_POLYNOMIALS[degree]
