"""Unit tests for repro.codes.twonc and repro.codes.walsh."""

import numpy as np
import pytest

from repro.codes.properties import analyze_family, balance
from repro.codes.twonc import TwoNCFamily, twonc_codes
from repro.codes.walsh import WalshFamily, hadamard_matrix, walsh_codes


class TestTwoNC:
    def test_deterministic(self):
        """Tags and receiver must derive identical codes independently."""
        a = TwoNCFamily(4, 32).codes()
        b = TwoNCFamily(4, 32).codes()
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_balanced(self):
        """Every 2NC code has exactly half its chips set."""
        for code in twonc_codes(6, 32):
            assert balance(code) == 0.0

    def test_distinct(self):
        codes = twonc_codes(8, 32)
        assert len({tuple(c) for c in codes}) == 8

    def test_even_length_required(self):
        with pytest.raises(ValueError):
            TwoNCFamily(2, 31)

    def test_default_length(self):
        assert TwoNCFamily(4).length == 32
        assert TwoNCFamily(20).length == 40

    def test_index_bounds(self):
        fam = TwoNCFamily(3, 16)
        with pytest.raises(ValueError):
            fam.code(3)

    def test_count_bounds(self):
        with pytest.raises(ValueError):
            TwoNCFamily(3, 16).codes(4)

    def test_size_one_rejected_at_zero(self):
        with pytest.raises(ValueError):
            TwoNCFamily(0)

    def test_orthogonality_beats_random(self):
        """The searched family must out-perform a random balanced family."""
        report = analyze_family(twonc_codes(5, 32))
        rng = np.random.default_rng(123)
        base = np.array([1] * 16 + [0] * 16, dtype=np.uint8)
        random_family = [rng.permutation(base) for _ in range(5)]
        random_report = analyze_family(random_family)
        assert report.merit() <= random_report.merit()

    def test_len(self):
        assert len(TwoNCFamily(3, 16)) == 3


class TestHadamard:
    def test_orthogonal_rows(self):
        h = hadamard_matrix(16).astype(np.int64)
        assert np.array_equal(h @ h.T, 16 * np.eye(16, dtype=np.int64))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            hadamard_matrix(12)

    def test_order_one(self):
        assert hadamard_matrix(1).tolist() == [[1]]


class TestWalshCodes:
    def test_synchronous_orthogonality(self):
        """Bipolar Walsh codes are exactly orthogonal at zero lag."""
        codes = walsh_codes(6, 32)
        bipolar = [c.astype(np.float64) * 2 - 1 for c in codes]
        for i in range(len(bipolar)):
            for j in range(i + 1, len(bipolar)):
                assert abs(float(np.dot(bipolar[i], bipolar[j]))) < 1e-9

    def test_skips_all_ones_row(self):
        for code in walsh_codes(5, 32):
            assert 0 < int(code.sum()) < 32

    def test_capacity_limit(self):
        with pytest.raises(ValueError):
            walsh_codes(32, 32)

    def test_family_wrapper(self):
        fam = WalshFamily(4, 16)
        assert len(fam) == 4
        assert fam.code(0).size == 16
        with pytest.raises(ValueError):
            fam.code(4)
        with pytest.raises(ValueError):
            fam.codes(5)
