"""Unit tests for repro.codes.kasami."""

import numpy as np
import pytest

from repro.codes.kasami import KasamiFamily, kasami_codes
from repro.codes.properties import analyze_family
from repro.codes.registry import make_codes


class TestKasamiFamily:
    def test_dimensions(self):
        fam = KasamiFamily(6)
        assert fam.length == 63
        assert fam.size == 8
        assert len(fam) == 8

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError):
            KasamiFamily(5)

    def test_uncatalogued_degree_rejected(self):
        with pytest.raises(ValueError):
            KasamiFamily(14)

    def test_codes_distinct(self):
        fam = KasamiFamily(6)
        assert len({tuple(c) for c in fam.codes()}) == fam.size

    def test_index_bounds(self):
        fam = KasamiFamily(6)
        with pytest.raises(ValueError):
            fam.code(8)

    def test_count_bounds(self):
        with pytest.raises(ValueError):
            KasamiFamily(6).codes(9)

    @pytest.mark.parametrize("degree", [4, 6, 8])
    def test_achieves_welch_bound(self, degree):
        """The small set's max cross-correlation equals its bound exactly."""
        fam = KasamiFamily(degree)
        report = analyze_family(fam.codes())
        assert report.max_cross == pytest.approx(fam.welch_bound, abs=1e-9)

    def test_beats_gold_bound(self):
        """Kasami-63 max cross (9/63) < Gold-63 bound (17/63)."""
        report = analyze_family(KasamiFamily(6).codes())
        assert report.max_cross < 17.0 / 63.0


class TestKasamiHelper:
    def test_basic(self):
        codes = kasami_codes(5, 63)
        assert len(codes) == 5
        assert all(c.size == 63 for c in codes)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            kasami_codes(4, 60)

    def test_registry_integration(self):
        codes = make_codes("kasami", 4, 63)
        assert len(codes) == 4
