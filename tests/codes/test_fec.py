"""Unit tests for repro.codes.fec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.codes.fec import BlockInterleaver, FecPipeline, HammingCode
from repro.utils.bits import as_bit_array, random_bits


class TestHamming74:
    def test_rate(self):
        assert HammingCode().rate == pytest.approx(4 / 7)
        assert HammingCode(extended=True).rate == 0.5

    def test_roundtrip_clean(self):
        code = HammingCode()
        data = random_bits(64, np.random.default_rng(0))
        decoded, corrected, unc = code.decode(code.encode(data))
        assert np.array_equal(decoded, data)
        assert corrected == 0
        assert unc == 0

    def test_corrects_any_single_error(self):
        code = HammingCode()
        data = as_bit_array("1011")
        word = code.encode(data)
        for pos in range(7):
            corrupted = word.copy()
            corrupted[pos] ^= 1
            decoded, corrected, _ = code.decode(corrupted)
            assert np.array_equal(decoded, data), f"failed at position {pos}"
            assert corrected == 1

    def test_length_validation(self):
        code = HammingCode()
        with pytest.raises(ValueError):
            code.encode([1, 0, 1])
        with pytest.raises(ValueError):
            code.decode([1] * 6)

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64).filter(lambda b: len(b) % 4 == 0))
    def test_roundtrip_property(self, bits):
        code = HammingCode()
        data = as_bit_array(bits)
        decoded, _, _ = code.decode(code.encode(data))
        assert np.array_equal(decoded, data)

    @given(st.data())
    def test_single_error_always_corrected(self, draw):
        code = HammingCode()
        data = as_bit_array(draw.draw(st.lists(st.integers(0, 1), min_size=4, max_size=4)))
        word = code.encode(data)
        pos = draw.draw(st.integers(0, 6))
        word[pos] ^= 1
        decoded, _, _ = code.decode(word)
        assert np.array_equal(decoded, data)


class TestExtendedHamming:
    def test_detects_double_errors(self):
        code = HammingCode(extended=True)
        data = as_bit_array("0110")
        word = code.encode(data)
        corrupted = word.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        _, _, uncorrectable = code.decode(corrupted)
        assert uncorrectable == 1

    def test_corrects_single_errors(self):
        code = HammingCode(extended=True)
        data = as_bit_array("1010")
        word = code.encode(data)
        for pos in range(7):
            corrupted = word.copy()
            corrupted[pos] ^= 1
            decoded, corrected, unc = code.decode(corrupted)
            assert np.array_equal(decoded, data)
            assert (corrected, unc) == (1, 0)

    def test_parity_bit_error_harmless(self):
        code = HammingCode(extended=True)
        data = as_bit_array("1111")
        word = code.encode(data)
        word[7] ^= 1  # the extra parity bit
        decoded, corrected, unc = code.decode(word)
        assert np.array_equal(decoded, data)
        assert unc == 0


class TestInterleaver:
    def test_roundtrip(self):
        il = BlockInterleaver(depth=4)
        bits = random_bits(32, np.random.default_rng(1))
        assert np.array_equal(il.deinterleave(il.interleave(bits)), bits)

    def test_burst_dispersal(self):
        """A burst of `depth` adjacent on-air errors lands in distinct
        deinterleaved positions spaced by `depth`."""
        il = BlockInterleaver(depth=8)
        n = 64
        clean = np.zeros(n, dtype=np.uint8)
        on_air = il.interleave(clean)
        on_air[10:18] ^= 1  # 8-bit burst
        received = il.deinterleave(on_air)
        error_positions = np.flatnonzero(received)
        assert error_positions.size == 8
        assert np.all(np.diff(error_positions) >= 7)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            BlockInterleaver(depth=8).interleave([1, 0, 1])


class TestFecPipeline:
    def test_roundtrip_with_padding(self):
        pipe = FecPipeline(HammingCode(), BlockInterleaver(depth=8))
        data = random_bits(30, np.random.default_rng(2))  # not a multiple of 4
        coded = pipe.encode(data)
        assert coded.size == pipe.encoded_length(30)
        decoded, corrected = pipe.decode(coded, 30)
        assert np.array_equal(decoded, data)
        assert corrected == 0

    def test_burst_corrected_end_to_end(self):
        """An 8-bit on-air burst survives interleave + Hamming."""
        pipe = FecPipeline(HammingCode(), BlockInterleaver(depth=8))
        data = random_bits(56, np.random.default_rng(3))
        coded = pipe.encode(data)
        coded[20:28] ^= 1
        decoded, corrected = pipe.decode(coded, 56)
        assert np.array_equal(decoded, data)
        assert corrected >= 1

    def test_without_interleaver(self):
        pipe = FecPipeline(HammingCode())
        data = random_bits(16, np.random.default_rng(4))
        decoded, _ = pipe.decode(pipe.encode(data), 16)
        assert np.array_equal(decoded, data)

    def test_too_short_decode_rejected(self):
        pipe = FecPipeline(HammingCode())
        with pytest.raises(ValueError):
            pipe.decode([1, 0, 1, 0, 1, 0, 1], 10)
