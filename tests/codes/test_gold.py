"""Unit tests for repro.codes.gold."""

import numpy as np
import pytest

from repro.codes.gold import GoldFamily, gold_codes
from repro.codes.properties import periodic_crosscorrelation


class TestGoldFamily:
    def test_size(self):
        fam = GoldFamily(5)
        assert fam.length == 31
        assert fam.size == 33
        assert len(fam) == 33

    def test_unsupported_degree(self):
        with pytest.raises(ValueError):
            GoldFamily(8)  # no preferred pair exists for degree 8

    def test_codes_distinct(self):
        fam = GoldFamily(5)
        codes = fam.codes(fam.size)
        seen = {tuple(c) for c in codes}
        assert len(seen) == fam.size

    def test_index_bounds(self):
        fam = GoldFamily(5)
        with pytest.raises(ValueError):
            fam.code(fam.size)
        with pytest.raises(ValueError):
            fam.code(-1)

    def test_too_many_requested(self):
        with pytest.raises(ValueError):
            GoldFamily(5).codes(40)

    def test_three_valued_crosscorrelation(self):
        """Gold's theorem: cross-correlation takes only 3 values.

        For n=5 the values are {-1, -t, t-2}/N with t = 2^((n+1)/2)+1 = 9.
        """
        fam = GoldFamily(5)
        n = fam.length
        allowed = {-1.0, -9.0, 7.0}
        codes = fam.codes(10)
        for i in range(len(codes)):
            for j in range(i + 1, len(codes)):
                corr = periodic_crosscorrelation(codes[i], codes[j]) * n
                values = set(np.round(corr).astype(int).tolist())
                assert values <= {int(v) for v in allowed}, values

    def test_bounded_crosscorrelation_degree7(self):
        fam = GoldFamily(7)
        codes = fam.codes(5)
        bound = 17.0 / 127.0  # 2^((n+1)/2) + 1 over N
        for i in range(len(codes)):
            for j in range(i + 1, len(codes)):
                cc = np.abs(periodic_crosscorrelation(codes[i], codes[j]))
                assert cc.max() <= bound + 1e-9


class TestGoldCodesHelper:
    def test_basic(self):
        codes = gold_codes(4, 31)
        assert len(codes) == 4
        assert all(c.size == 31 for c in codes)

    def test_offset(self):
        a = gold_codes(2, 31, offset=0)
        b = gold_codes(2, 31, offset=2)
        assert not np.array_equal(a[0], b[0])

    def test_bad_length(self):
        with pytest.raises(ValueError):
            gold_codes(2, 30)

    def test_offset_overflow(self):
        with pytest.raises(ValueError):
            gold_codes(10, 31, offset=30)
