"""Golden-value regression tests.

Everything in the simulator is a pure function of its seed; these tests
pin a handful of seeded outputs *exactly*, so an unintended behaviour
change anywhere in the stack (codes, PHY, channel, receiver) shows up
as a diff even when all property tests still pass.

INTENTIONAL changes (recalibration, receiver improvements) will break
these; that is the point.  Regenerate the constants with the snippet in
each test's docstring and mention the change in CHANGELOG.md.
"""

import hashlib

import numpy as np

from repro.channel.geometry import Deployment
from repro.codes import make_codes
from repro.sim.network import CbmaConfig, CbmaNetwork


def _digest(arrays) -> str:
    m = hashlib.sha256()
    for a in arrays:
        m.update(np.ascontiguousarray(a).tobytes())
    return m.hexdigest()[:16]


class TestCodeGoldens:
    """Code families are deterministic constructions; their bytes must
    never drift silently (tags and receiver derive them independently).

    Regenerate: ``_digest(make_codes(family, 5, length))``.
    """

    def test_gold_family_digest(self):
        assert _digest(make_codes("gold", 5, 31)) == "b23ff4555782aa52"

    def test_twonc_family_digest(self):
        assert _digest(make_codes("2nc", 5, 64)) == "3591e7b66926732b"

    def test_kasami_family_digest(self):
        assert _digest(make_codes("kasami", 5, 63)) == "b1230befa9ef0df1"


class TestEndToEndGoldens:
    """Seeded end-to-end runs.  Regenerate by running the scenario and
    reading ``frames_correct`` / ``frames_detected``."""

    def test_two_tags_one_meter_seed42(self):
        net = CbmaNetwork(
            CbmaConfig(n_tags=2, seed=42), Deployment.linear(2, tag_to_rx=1.0)
        )
        metrics = net.run_rounds(20)
        assert metrics.frames_correct == 40
        assert metrics.frames_detected == 40

    def test_four_tags_two_meters_seed42(self):
        net = CbmaNetwork(
            CbmaConfig(n_tags=4, seed=42), Deployment.linear(4, tag_to_rx=2.0)
        )
        metrics = net.run_rounds(15)
        assert metrics.frames_correct == 58
        assert metrics.frames_detected == 59
