"""Backoff strategy zoo: growth shapes, broadcasting, registry."""

import numpy as np
import pytest

from repro.macro.backoff import (
    BACKOFF_REGISTRY,
    AdaptiveBackoff,
    BinaryExponentialBackoff,
    EiedBackoff,
    FibonacciBackoff,
    make_backoff,
)
from repro.utils.rng import make_rng


class TestRegistry:
    def test_every_name_builds(self):
        for name in BACKOFF_REGISTRY:
            strategy = make_backoff(name)
            assert strategy.initial_cw() >= 1.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backoff"):
            make_backoff("exponential-ish")

    def test_params_reach_the_constructor(self):
        strategy = make_backoff("beb", cw_min=4.0, cw_max=64.0)
        assert strategy.cw_min == 4.0 and strategy.cw_max == 64.0

    def test_invalid_windows_rejected(self):
        for cls in (BinaryExponentialBackoff, FibonacciBackoff, EiedBackoff, AdaptiveBackoff):
            with pytest.raises(ValueError):
                cls(cw_min=8.0, cw_max=2.0)
            with pytest.raises(ValueError):
                cls(cw_min=0.5, cw_max=2.0)


class TestShapes:
    def test_beb_doubles_and_caps(self):
        b = BinaryExponentialBackoff(cw_min=2.0, cw_max=16.0)
        cw = b.initial_cw()
        seen = []
        for attempt in range(1, 6):
            cw = float(b.on_failure(cw, attempt))
            seen.append(cw)
        assert seen == [4.0, 8.0, 16.0, 16.0, 16.0]
        assert float(b.on_success(seen[-1])) == 2.0

    def test_fibonacci_grows_subexponentially(self):
        f = FibonacciBackoff(cw_min=2.0, cw_max=1024.0)
        windows = [float(f.on_failure(0.0, a)) for a in range(1, 7)]
        # 2 * F(1..6) = 2, 2, 4, 6, 10, 16
        assert windows == [2.0, 2.0, 4.0, 6.0, 10.0, 16.0]

    def test_eied_decreases_gradually(self):
        e = EiedBackoff(cw_min=2.0, cw_max=64.0, r_increase=2.0, r_decrease=2.0)
        cw = float(e.on_failure(16.0, 1))
        assert cw == 32.0
        assert float(e.on_success(cw)) == 16.0  # halves, does not snap shut
        assert float(e.on_success(2.5)) == 2.0  # floors at cw_min

    def test_adaptive_closes_additively(self):
        a = AdaptiveBackoff(cw_min=2.0, cw_max=64.0, increase_factor=2.0, decrease_step=1.0)
        assert float(a.on_failure(8.0, 1)) == 16.0
        assert float(a.on_success(16.0)) == 15.0
        assert float(a.on_success(2.2)) == 2.0


class TestBroadcasting:
    @pytest.mark.parametrize("name", sorted(BACKOFF_REGISTRY))
    def test_array_and_scalar_paths_agree(self, name):
        strategy = make_backoff(name)
        cw = np.array([2.0, 8.0, 32.0])
        attempts = np.array([1, 2, 3])
        widened = strategy.on_failure(cw, attempts)
        assert widened.shape == cw.shape
        for i in range(cw.size):
            assert float(strategy.on_failure(cw[i], int(attempts[i]))) == pytest.approx(
                widened[i]
            )
        closed = strategy.on_success(cw)
        for i in range(cw.size):
            assert float(strategy.on_success(cw[i])) == pytest.approx(closed[i])

    def test_delay_slots_bounds(self):
        strategy = BinaryExponentialBackoff(cw_min=2.0, cw_max=8.0)
        rng = make_rng(5)
        scalar = strategy.delay_slots(4.0, rng)
        assert isinstance(scalar, int) and 0 <= scalar < 4
        draws = strategy.delay_slots(np.full(1000, 4.0), rng)
        assert draws.min() >= 0 and draws.max() < 4
        # cw pinned to 1 => deterministic zero wait (cross-validation
        # relies on this to mirror saturated PHY rounds).
        assert strategy.delay_slots(1.0, rng) == 0
