"""Calibration sweep and the provenance-keyed artifact cache.

The actual PHY sweep runs once per module (tiny grid, seconds) and is
shared by every test here through a module-scoped fixture.
"""

import json

import numpy as np
import pytest

from repro.macro.calibration import (
    CalibrationSpec,
    calibrate,
    geometry_snr_db,
    load_or_calibrate,
)
from repro.obs.tracer import Tracer


@pytest.fixture(scope="module")
def tiny_surface():
    return calibrate(CalibrationSpec.tiny())


class TestGeometrySnr:
    def test_monotone_in_distance(self):
        snrs = [geometry_snr_db(d) for d in (0.5, 1.0, 2.0, 4.0)]
        assert snrs == sorted(snrs, reverse=True)

    def test_deterministic(self):
        assert geometry_snr_db(1.5) == geometry_snr_db(1.5)


class TestSpec:
    def test_grid_validation(self):
        with pytest.raises(ValueError):
            CalibrationSpec(tag_counts=())
        with pytest.raises(ValueError):
            CalibrationSpec(tag_counts=(4, 2))
        with pytest.raises(ValueError):
            CalibrationSpec(distances_m=(1.0, 1.0))
        with pytest.raises(ValueError):
            CalibrationSpec(rounds=0)

    def test_provenance_names_the_phy(self):
        prov = CalibrationSpec.tiny().provenance()
        assert prov["calibrated_from"] == "repro.sim.network.CbmaNetwork"
        assert prov["fading"] == "on"
        assert prov["frame_duration_s"] > 0


class TestCalibrate:
    def test_surface_shape_and_axes(self, tiny_surface):
        spec = CalibrationSpec.tiny()
        assert tiny_surface.fer.shape == (len(spec.tag_counts), len(spec.distances_m))
        assert np.all(np.diff(tiny_surface.snr_db_axis) > 0)
        np.testing.assert_array_equal(tiny_surface.k_axis, spec.tag_counts)

    def test_more_concurrency_is_worse(self, tiny_surface):
        # On the tiny grid the distance effect drowns in Monte-Carlo
        # noise (8 rounds/cell), but the concurrency effect is an order
        # of magnitude and must survive: each k row averages at least
        # as much FER as the one below it.
        row_means = tiny_surface.fer.mean(axis=1)
        assert np.all(np.diff(row_means) >= 0)

    def test_counts_calibration_rounds(self):
        tracer = Tracer()
        spec = CalibrationSpec(tag_counts=(1,), distances_m=(1.0,), rounds=2)
        calibrate(spec, tracer=tracer)
        assert tracer.counters["macro.calibration_rounds"] == 2
        assert "macro_calibration" in {r.name for r in tracer.records}


class TestCache:
    def test_miss_then_hit(self, tmp_path, tiny_surface):
        path = tmp_path / "surface.json"
        spec = CalibrationSpec.tiny()
        tiny_surface.save(path)

        tracer = Tracer()
        loaded = load_or_calibrate(path, spec, tracer=tracer)
        assert tracer.counters.get("macro.surface_cache_hits") == 1
        np.testing.assert_allclose(loaded.fer, tiny_surface.fer)

    def test_stale_provenance_recalibrates(self, tmp_path, tiny_surface):
        path = tmp_path / "surface.json"
        doc = tiny_surface.to_dict()
        doc["provenance"]["rounds"] = 999  # claims a sweep that never ran
        path.write_text(json.dumps(doc))

        spec = CalibrationSpec(tag_counts=(1,), distances_m=(1.0,), rounds=1)
        tracer = Tracer()
        fresh = load_or_calibrate(path, spec, tracer=tracer)
        assert "macro.surface_cache_hits" not in tracer.counters
        assert fresh.provenance["rounds"] == 1
        # The stale artifact was overwritten with the fresh sweep.
        assert json.loads(path.read_text())["provenance"]["rounds"] == 1

    def test_corrupt_artifact_recalibrates(self, tmp_path):
        path = tmp_path / "surface.json"
        path.write_text("{not json")
        spec = CalibrationSpec(tag_counts=(1,), distances_m=(1.0,), rounds=1)
        surface = load_or_calibrate(path, spec)
        assert surface.fer.shape == (1, 1)

    def test_extra_provenance_keys_still_hit(self, tmp_path, tiny_surface):
        # sweep_wall_s (and future bookkeeping) must not bust the cache.
        path = tmp_path / "surface.json"
        doc = tiny_surface.to_dict()
        doc["provenance"]["sweep_wall_s"] = 12.3
        path.write_text(json.dumps(doc))
        tracer = Tracer()
        load_or_calibrate(path, CalibrationSpec.tiny(), tracer=tracer)
        assert tracer.counters.get("macro.surface_cache_hits") == 1
