"""FerSurface: interpolation, clamping, artifact round-trip, schema."""

import json

import numpy as np
import pytest

from repro.macro.linkmodel import SURFACE_SCHEMA, FerSurface


def make_surface():
    """A small hand-built grid with easy-to-check values."""
    return FerSurface(
        snr_db_axis=np.array([0.0, 10.0, 20.0]),
        k_axis=np.array([1.0, 5.0]),
        fer=np.array([[0.8, 0.4, 0.0], [1.0, 0.6, 0.2]]),
        provenance={"frame_duration_s": 0.01, "rounds": 1},
    )


class TestValidation:
    def test_axes_must_ascend(self):
        with pytest.raises(ValueError):
            FerSurface(
                snr_db_axis=np.array([10.0, 0.0]),
                k_axis=np.array([1.0]),
                fer=np.array([[0.5, 0.5]]),
                provenance={},
            )

    def test_shape_must_match_axes(self):
        with pytest.raises(ValueError):
            FerSurface(
                snr_db_axis=np.array([0.0, 10.0]),
                k_axis=np.array([1.0, 2.0]),
                fer=np.array([[0.5, 0.5]]),
                provenance={},
            )

    def test_fer_must_be_probability(self):
        with pytest.raises(ValueError):
            FerSurface(
                snr_db_axis=np.array([0.0, 10.0]),
                k_axis=np.array([1.0]),
                fer=np.array([[0.5, 1.5]]),
                provenance={},
            )


class TestInterpolation:
    def test_exact_at_grid_points(self):
        s = make_surface()
        for i, k in enumerate(s.k_axis):
            for j, snr in enumerate(s.snr_db_axis):
                assert s.fer_at(snr, k) == pytest.approx(s.fer[i, j])

    def test_bilinear_midpoint(self):
        s = make_surface()
        # Centre of the (0..10 dB, k 1..5) cell: mean of the 4 corners.
        expected = np.mean([0.8, 0.4, 1.0, 0.6])
        assert s.fer_at(5.0, 3.0) == pytest.approx(expected)

    def test_clamps_outside_the_grid(self):
        s = make_surface()
        assert s.fer_at(-100.0, 0.5) == pytest.approx(s.fer[0, 0])
        assert s.fer_at(100.0, 50.0) == pytest.approx(s.fer[-1, -1])

    def test_scalar_in_scalar_out(self):
        s = make_surface()
        out = s.fer_at(5.0, 1.0)
        assert isinstance(out, float)

    def test_vectorised_matches_scalar(self):
        s = make_surface()
        rng = np.random.default_rng(3)
        snr = rng.uniform(-5, 25, 64)
        k = rng.uniform(0.5, 8, 64)
        batch = s.fer_at(snr, k)
        singles = np.array([s.fer_at(float(a), float(b)) for a, b in zip(snr, k)])
        np.testing.assert_allclose(batch, singles)


class TestArtifact:
    def test_round_trip(self, tmp_path):
        s = make_surface()
        path = tmp_path / "surface.json"
        s.save(path)
        loaded = FerSurface.load(path)
        np.testing.assert_allclose(loaded.fer, s.fer)
        np.testing.assert_allclose(loaded.snr_db_axis, s.snr_db_axis)
        np.testing.assert_allclose(loaded.k_axis, s.k_axis)
        assert loaded.provenance == s.provenance

    def test_schema_is_stamped(self, tmp_path):
        s = make_surface()
        path = tmp_path / "surface.json"
        s.save(path)
        assert json.loads(path.read_text())["schema"] == SURFACE_SCHEMA

    def test_foreign_schema_rejected(self, tmp_path):
        s = make_surface()
        path = tmp_path / "surface.json"
        s.save(path)
        doc = json.loads(path.read_text())
        doc["schema"] = "someone.elses/9"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            FerSurface.load(path)
