"""MacroSimulator: determinism, reliability semantics, access modes.

Engine tests run on tiny hand-built surfaces (constant or stepped FER)
so behaviour is exact and nothing here pays for a PHY calibration.
"""

import numpy as np
import pytest

from repro.macro.engine import MacroConfig, MacroSimulator
from repro.macro.linkmodel import FerSurface
from repro.obs.tracer import Tracer
from repro.sim.traffic import PeriodicArrivals, PoissonArrivals

SLOT_S = 0.01


def flat_surface(fer_value: float) -> FerSurface:
    """Concurrency- and SNR-independent FER: pure link coin-flip."""
    return FerSurface(
        snr_db_axis=np.array([0.0, 30.0]),
        k_axis=np.array([1.0, 64.0]),
        fer=np.full((2, 2), fer_value),
        provenance={"frame_duration_s": SLOT_S},
    )


def contention_surface() -> FerSurface:
    """Perfect alone, hopeless beyond k=8 -- makes collisions visible."""
    return FerSurface(
        snr_db_axis=np.array([0.0, 30.0]),
        k_axis=np.array([1.0, 8.0]),
        fer=np.array([[0.0, 0.0], [1.0, 1.0]]),
        provenance={"frame_duration_s": SLOT_S},
    )


def run(config: MacroConfig, surface: FerSurface, n_slots: int):
    return MacroSimulator(config, surface).run(n_slots)


class SingleBurst:
    """Every tag gets exactly one frame, all in the first window."""

    def __init__(self):
        self._fired = False

    def reset(self):
        self._fired = False

    def draw(self, n_tags, duration_s, rng=None):
        if self._fired:
            return np.zeros(n_tags, dtype=np.int64)
        self._fired = True
        return np.ones(n_tags, dtype=np.int64)


class TestDeterminism:
    def test_same_seed_identical_stats(self):
        cfg = lambda: MacroConfig(  # noqa: E731 - fresh traffic each build
            n_tags=500,
            traffic=PoissonArrivals(rate_hz=0.1 / SLOT_S),
            ack_loss_prob=0.05,
            seed=42,
        )
        a = run(cfg(), flat_surface(0.3), 80)
        b = run(cfg(), flat_surface(0.3), 80)
        assert (a.offered, a.delivered, a.dropped, a.duplicates, a.transmissions) == (
            b.offered,
            b.delivered,
            b.dropped,
            b.duplicates,
            b.transmissions,
        )
        assert a.latencies_s == b.latencies_s

    def test_different_seed_differs(self):
        make = lambda s: MacroConfig(  # noqa: E731
            n_tags=500, traffic=PoissonArrivals(rate_hz=0.1 / SLOT_S), seed=s
        )
        a = run(make(1), flat_surface(0.3), 80)
        b = run(make(2), flat_surface(0.3), 80)
        assert a.transmissions != b.transmissions

    def test_segmented_run_equals_one_run(self):
        make = lambda: MacroConfig(  # noqa: E731
            n_tags=200, traffic=PoissonArrivals(rate_hz=0.2 / SLOT_S), seed=9
        )
        whole = run(make(), flat_surface(0.2), 60)
        sim = MacroSimulator(make(), flat_surface(0.2))
        parts = [sim.run(20) for _ in range(3)]
        assert sum(p.delivered for p in parts) == whole.delivered
        assert sum(p.offered for p in parts) == whole.offered
        assert parts[-1].final_backlog == whole.final_backlog


class TestReliabilitySemantics:
    def test_perfect_link_delivers_everything(self):
        cfg = MacroConfig(
            n_tags=100, traffic=PeriodicArrivals(period_s=10 * SLOT_S), seed=3
        )
        stats = run(cfg, flat_surface(0.0), 100)
        assert stats.offered > 0
        assert stats.delivered == stats.offered - stats.final_backlog
        assert stats.dropped == 0
        assert stats.link_fer == 0.0

    def test_dead_link_drops_after_max_retries(self):
        cfg = MacroConfig(
            n_tags=10,
            traffic=PeriodicArrivals(period_s=50 * SLOT_S),
            max_retries=3,
            seed=3,
        )
        stats = run(cfg, flat_surface(1.0), 40)
        assert stats.delivered == 0
        assert stats.dropped > 0
        assert stats.link_fer == 1.0

    def test_ack_loss_causes_duplicates_not_double_counting(self):
        cfg = MacroConfig(
            n_tags=50,
            traffic=PeriodicArrivals(period_s=20 * SLOT_S),
            ack_loss_prob=0.5,
            seed=8,
        )
        stats = run(cfg, flat_surface(0.0), 200)
        assert stats.acks_lost > 0
        assert stats.duplicates > 0
        # Every offered frame is delivered at most once.
        assert stats.delivered <= stats.offered
        assert stats.delivered + stats.final_backlog + stats.dropped >= stats.offered - 50

    def test_tail_drop_at_queue_cap(self):
        class Flood:
            def reset(self):
                pass

            def draw(self, n_tags, duration_s, rng=None):
                return np.full(n_tags, 10, dtype=np.int64)

        cfg = MacroConfig(n_tags=5, traffic=Flood(), max_queue=4, seed=1)
        stats = run(cfg, flat_surface(1.0), 10)
        assert stats.dropped > 0
        assert stats.final_backlog <= 5 * 4

    def test_saturated_mode_never_idles(self):
        cfg = MacroConfig(n_tags=20, traffic=None, seed=5)
        stats = run(cfg, flat_surface(0.2), 50)
        # Every tag transmits every slot it is not backing off; with
        # BEB cw_min=2 there is idle time, but offered tracks retirement.
        assert stats.offered >= 20
        assert stats.transmissions > 0
        assert stats.final_backlog == 20  # the queue never drains


class TestAccessModes:
    def test_contention_kills_slotted_bursts(self):
        # 20 tags all arrive in the same window; slotted access means
        # k=20 > 8 => every first attempt fails on the step surface.
        cfg = MacroConfig(n_tags=20, traffic=SingleBurst(), seed=2)
        stats = run(cfg, contention_surface(), 1)
        assert stats.delivered == 0
        assert stats.link_failures == 20

    def test_unslotted_sees_cross_window_overlap(self):
        # One arrival per window (staggered phases).  Slotted access
        # isolates them perfectly (k=1 every time); unslotted starts
        # drift inside the window, so consecutive airtimes overlap
        # about half the time and the pair surface kills those.
        slot = 0.0078125  # binary-exact so phase arithmetic can't drift
        pair_surface = FerSurface(
            snr_db_axis=np.array([0.0, 30.0]),
            k_axis=np.array([1.0, 2.0]),
            fer=np.array([[0.0, 0.0], [1.0, 1.0]]),
            provenance={"frame_duration_s": slot},
        )
        make = lambda slotted: MacroConfig(  # noqa: E731
            n_tags=8,
            traffic=PeriodicArrivals(period_s=8 * slot),
            slotted=slotted,
            max_retries=1,  # no retransmissions muddying the count
            seed=2,
        )
        assert run(make(True), pair_surface, 120).link_failures == 0
        assert run(make(False), pair_surface, 120).link_failures > 10

    def test_backoff_drains_the_storm(self):
        cfg = MacroConfig(
            n_tags=20,
            traffic=SingleBurst(),
            backoff="beb",
            backoff_params={"cw_min": 2.0, "cw_max": 64.0},
            max_retries=20,
            seed=2,
        )
        stats = run(cfg, contention_surface(), 400)
        assert stats.offered == 20
        assert stats.delivered == 20


class TestConfigAndInstrumentation:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MacroConfig(n_tags=0)
        with pytest.raises(ValueError):
            MacroConfig(ack_loss_prob=1.5)
        with pytest.raises(ValueError):
            MacroConfig(slot_s=0.0)

    def test_slot_length_defaults_to_surface_provenance(self):
        sim = MacroSimulator(MacroConfig(n_tags=1), flat_surface(0.0))
        assert sim.slot_s == SLOT_S

    def test_from_config_loads_surface_path(self, tmp_path):
        path = flat_surface(0.25).save(tmp_path / "s.json")
        sim = MacroSimulator.from_config(MacroConfig(n_tags=3, seed=1), str(path))
        assert sim.surface.fer_at(10.0, 2.0) == pytest.approx(0.25)

    def test_macro_metrics_emitted_once_aggregated(self):
        tracer = Tracer()
        cfg = MacroConfig(
            n_tags=100, traffic=PoissonArrivals(rate_hz=0.2 / SLOT_S), seed=4
        )
        stats = MacroSimulator(cfg, flat_surface(0.3), tracer=tracer).run(50)
        assert tracer.counters["macro.offered"] == stats.offered
        assert tracer.counters["macro.delivered"] == stats.delivered
        assert tracer.counters["macro.transmissions"] == stats.transmissions
        assert tracer.counters["macro.windows"] == 50
        assert "macro_run" in {r.name for r in tracer.records}

    def test_fleet_scale_smoke(self):
        # The acceptance floor: 10^5 tags advance without the
        # sample-domain decoder anywhere near the hot loop.
        cfg = MacroConfig(
            n_tags=100_000, traffic=PoissonArrivals(rate_hz=0.05 / SLOT_S), seed=11
        )
        stats = run(cfg, flat_surface(0.2), 20)
        assert stats.windows == 20
        assert stats.offered > 50_000
        assert stats.delivered > 0
