"""Scenario drivers and the macro <-> sample-domain contract."""

from pathlib import Path

import numpy as np
import pytest

from repro.macro.engine import MacroConfig, MacroSimulator
from repro.macro.linkmodel import FerSurface
from repro.macro.scenarios import (
    DELIVERY_TOLERANCE,
    FER_TOLERANCE,
    FireRingTraffic,
    cross_validate,
    fire_ring,
    offered_load_sweep,
)

#: The artifact CI commits and the cross-validation contract runs on.
COMMITTED_SURFACE = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "FER_SURFACE_0001.json"
)

SLOT_S = 0.01


def flat_surface(fer_value: float) -> FerSurface:
    return FerSurface(
        snr_db_axis=np.array([0.0, 30.0]),
        k_axis=np.array([1.0, 64.0]),
        fer=np.full((2, 2), fer_value),
        provenance={"frame_duration_s": SLOT_S},
    )


def contention_surface() -> FerSurface:
    """FER grows with concurrency: 0 alone, 0.9 at k=64."""
    return FerSurface(
        snr_db_axis=np.array([0.0, 30.0]),
        k_axis=np.array([1.0, 64.0]),
        fer=np.array([[0.0, 0.0], [0.9, 0.9]]),
        provenance={"frame_duration_s": SLOT_S},
    )


class TestFireRingTraffic:
    def test_each_tag_fires_exactly_once(self):
        crossing = np.array([0.005, 0.014, 0.014, 0.031])
        traffic = FireRingTraffic(crossing)
        totals = np.zeros(4, dtype=np.int64)
        for _ in range(5):
            totals += traffic.draw(4, SLOT_S)
        np.testing.assert_array_equal(totals, [1, 1, 1, 1])

    def test_reset_replays_the_event(self):
        traffic = FireRingTraffic(np.array([0.0, 0.005]))
        first = traffic.draw(2, SLOT_S)
        traffic.reset()
        np.testing.assert_array_equal(traffic.draw(2, SLOT_S), first)

    def test_fleet_size_checked(self):
        with pytest.raises(ValueError):
            FireRingTraffic(np.array([0.1])).draw(3, SLOT_S)


class TestOfferedLoadSweep:
    def test_series_shapes_and_ranges(self):
        result = offered_load_sweep(
            flat_surface(0.1),
            rates_per_slot=(0.05, 0.3),
            n_tags=200,
            n_slots=60,
            seed=5,
        )
        assert result.experiment_id == "macro_load_sweep"
        for name in ("delivery_ratio", "goodput_bps", "p95_latency_s", "link_fer"):
            assert len(result.series[name]) == 2
        assert all(0.0 <= v <= 1.0 for v in result.series["delivery_ratio"])

    def test_contention_degrades_with_load(self):
        result = offered_load_sweep(
            contention_surface(),
            rates_per_slot=(0.02, 0.8),
            n_tags=400,
            n_slots=80,
            seed=5,
        )
        fer = result.series["link_fer"]
        assert fer[-1] > fer[0]  # heavier load => more concurrency => worse links


class TestFireRing:
    def test_storm_drains_outward(self):
        result = fire_ring(flat_surface(0.1), n_tags=2000, n_segments=10, seed=23)
        delivered = result.series["delivered_cumulative"]
        assert delivered == sorted(delivered)
        assert result.metrics["delivery_ratio"] > 0.95
        assert result.metrics["final_backlog"] == 0.0
        assert result.metrics["peak_backlog"] > 0

    def test_deterministic(self):
        a = fire_ring(flat_surface(0.2), n_tags=500, n_segments=5, seed=7)
        b = fire_ring(flat_surface(0.2), n_tags=500, n_segments=5, seed=7)
        assert a.series["delivered_cumulative"] == b.series["delivered_cumulative"]
        assert a.metrics["delivery_ratio"] == b.metrics["delivery_ratio"]


class TestCrossValidation:
    """The acceptance contract: the committed artifact must reproduce
    the sample-domain 10-tag operating points within tolerance."""

    @pytest.fixture(scope="class")
    def result(self):
        assert COMMITTED_SURFACE.exists(), "committed FER surface missing"
        return cross_validate(str(COMMITTED_SURFACE))

    def test_within_tolerance(self, result):
        m = result.metrics
        assert m["max_abs_fer_err"] <= FER_TOLERANCE, m
        assert m["delivery_err"] <= DELIVERY_TOLERANCE, m
        assert m["within_tolerance"] == 1.0, m

    def test_compares_real_operating_points(self, result):
        # The PHY reference must actually exercise a spread of link
        # qualities -- a degenerate all-zero FER row would pass the
        # tolerance check while validating nothing.
        assert max(result.series["fer_phy"]) > 0.05
        assert len(result.x) >= 3


class TestFleetScaleScenario:
    def test_hundred_thousand_tags_on_committed_surface(self):
        # The ISSUE acceptance floor, end to end on the real artifact:
        # 10^5 tags advance through a calibrated surface with no
        # sample-domain decoder in the loop.
        surface = FerSurface.load(COMMITTED_SURFACE)
        from repro.sim.traffic import PoissonArrivals

        slot_s = float(surface.provenance["frame_duration_s"])
        cfg = MacroConfig(
            n_tags=100_000,
            traffic=PoissonArrivals(rate_hz=0.02 / slot_s),
            seed=31,
        )
        stats = MacroSimulator(cfg, surface).run(50)
        assert stats.windows == 50
        assert stats.delivered > 10_000
