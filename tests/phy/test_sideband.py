"""Unit tests for repro.phy.sideband."""

import math

import pytest

from repro.phy.sideband import (
    dsb_components,
    image_rejection_db,
    sideband_efficiency,
    ssb_components,
)


class TestDsb:
    def test_equal_split(self):
        wanted, image = dsb_components(2.0)
        assert wanted == image == 1.0

    def test_power_conserved(self):
        wanted, image = dsb_components(1.0)
        # Each sideband carries A/2 -> P/4; both together P/2 (the
        # other half is at the carrier/harmonics in a real square wave).
        assert abs(wanted) ** 2 + abs(image) ** 2 == pytest.approx(0.5)

    def test_efficiency_half(self):
        assert sideband_efficiency(single_sideband=False) == pytest.approx(0.5)


class TestSsb:
    def test_perfect_quadrature_no_image(self):
        wanted, image = ssb_components(1.0)
        assert abs(image) == pytest.approx(0.0, abs=1e-12)
        assert abs(wanted) == pytest.approx(1.0)

    def test_efficiency_one_when_perfect(self):
        assert sideband_efficiency(single_sideband=True) == pytest.approx(1.0)

    def test_phase_error_leaks(self):
        wanted, image = ssb_components(1.0, phase_error_rad=math.radians(10))
        assert abs(image) > 0
        assert abs(wanted) > abs(image)

    def test_amplitude_imbalance_leaks(self):
        _, image = ssb_components(1.0, amplitude_imbalance_db=1.0)
        assert abs(image) > 0

    def test_efficiency_degrades_with_error(self):
        perfect = sideband_efficiency(True)
        imperfect = sideband_efficiency(True, phase_error_rad=math.radians(20))
        assert imperfect < perfect


class TestImageRejection:
    def test_infinite_when_perfect(self):
        assert image_rejection_db(0.0) == float("inf")

    def test_classic_values(self):
        """~1 degree phase error gives ~41 dB IRR (textbook figure)."""
        irr = image_rejection_db(math.radians(1.0))
        assert 40.0 < irr < 43.0

    def test_monotone_in_phase_error(self):
        a = image_rejection_db(math.radians(1.0))
        b = image_rejection_db(math.radians(5.0))
        assert a > b

    def test_imbalance_contributes(self):
        only_phase = image_rejection_db(math.radians(2.0))
        both = image_rejection_db(math.radians(2.0), amplitude_imbalance_db=0.5)
        assert both < only_phase
