"""Unit tests for repro.phy.sampling and repro.phy.snr."""

import numpy as np
import pytest

from repro.phy.sampling import (
    chip_matched_filter,
    decimate,
    instantaneous_power,
    integrate_and_dump,
    moving_average,
)
from repro.phy.snr import (
    estimate_snr_db,
    evm,
    relative_power_difference,
    snr_from_amplitudes,
)


class TestMovingAverage:
    def test_constant_signal(self):
        out = moving_average(np.ones(10), 4)
        assert np.allclose(out, 1.0)

    def test_step_response(self):
        x = np.concatenate([np.zeros(4), np.ones(4)])
        out = moving_average(x, 4)
        assert out[3] == 0.0
        assert out[7] == 1.0
        assert 0 < out[5] < 1

    def test_cold_start_partial_window(self):
        out = moving_average(np.array([2.0, 4.0]), 8)
        assert out[0] == 2.0
        assert out[1] == 3.0

    def test_window_one_is_identity(self):
        x = np.arange(5.0)
        assert np.allclose(moving_average(x, 1), x)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)


class TestIntegrateAndDump:
    def test_averaging(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        out = integrate_and_dump(x, 2)
        assert out.tolist() == [2.0, 6.0]

    def test_offset(self):
        x = np.array([9.0, 1.0, 3.0])
        out = integrate_and_dump(x, 2, offset=1)
        assert out.tolist() == [2.0]

    def test_drops_partial_tail(self):
        out = integrate_and_dump(np.arange(5.0), 2)
        assert out.size == 2

    def test_empty_result(self):
        assert integrate_and_dump(np.ones(1), 2).size == 0

    def test_complex(self):
        x = np.array([1 + 1j, 3 + 3j])
        out = integrate_and_dump(x, 2)
        assert out[0] == pytest.approx(2 + 2j)

    def test_invalid(self):
        with pytest.raises(ValueError):
            integrate_and_dump(np.ones(4), 0)


class TestDecimateAndPower:
    def test_decimate(self):
        assert decimate(np.arange(10), 3).tolist() == [0, 3, 6, 9]

    def test_decimate_offset(self):
        assert decimate(np.arange(10), 3, offset=1).tolist() == [1, 4, 7]

    def test_decimate_invalid(self):
        with pytest.raises(ValueError):
            decimate(np.arange(4), 0)

    def test_instantaneous_power_is_magnitude(self):
        x = np.array([3 + 4j])
        assert instantaneous_power(x)[0] == pytest.approx(5.0)


class TestMatchedFilter:
    def test_peak_at_alignment(self):
        chip = np.concatenate([np.zeros(5), np.ones(4), np.zeros(5)])
        out = chip_matched_filter(chip, 4)
        assert int(np.argmax(out)) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            chip_matched_filter(np.ones(4), 0)


class TestSnrEstimation:
    def test_known_snr(self):
        rng = np.random.default_rng(0)
        n = 200_000
        noise = (rng.normal(0, 1, n) + 1j * rng.normal(0, 1, n)) / np.sqrt(2)
        signal = np.sqrt(10.0) * np.exp(1j * rng.uniform(0, 2 * np.pi, n))
        est = estimate_snr_db(signal + noise, noise)
        assert est == pytest.approx(10.0, abs=0.3)

    def test_zero_noise_rejected(self):
        with pytest.raises(ValueError):
            estimate_snr_db(np.ones(4), np.zeros(4))

    def test_snr_from_amplitudes(self):
        # amplitude 1, per-component std sqrt(0.5) -> total noise power 1.
        assert snr_from_amplitudes(1.0, np.sqrt(0.5)) == pytest.approx(0.0, abs=1e-9)

    def test_snr_from_amplitudes_invalid(self):
        with pytest.raises(ValueError):
            snr_from_amplitudes(1.0, 0.0)


class TestRelativePowerDifference:
    def test_equal_powers(self):
        assert relative_power_difference([2.0, 2.0]) == 0.0

    def test_paper_definition(self):
        # (max - min) / max.
        assert relative_power_difference([1.0, 0.5]) == pytest.approx(0.5)

    def test_single_value(self):
        assert relative_power_difference([3.0]) == 0.0

    def test_zero_max(self):
        assert relative_power_difference([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            relative_power_difference([-1.0, 1.0])


class TestEvm:
    def test_perfect_signal(self):
        ref = np.array([1 + 0j, -1 + 0j])
        assert evm(ref, ref) == 0.0

    def test_known_error(self):
        ref = np.array([1 + 0j])
        rx = np.array([1.1 + 0j])
        assert evm(rx, ref) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            evm(np.ones(2), np.ones(3))

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            evm(np.ones(2), np.zeros(2))
