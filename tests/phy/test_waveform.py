"""Unit tests for repro.phy.waveform."""

import math

import numpy as np
import pytest

from repro.phy.waveform import (
    FIRST_HARMONIC_AMPLITUDE,
    harmonic_power_db,
    square_wave,
    square_wave_harmonics,
    tone,
)


class TestSquareWave:
    def test_unit_amplitude(self):
        w = square_wave(1e6, 16e6, 64)
        assert set(np.unique(w)) <= {-1.0, 1.0}

    def test_period(self):
        # 16 samples per period at fs/f = 16.
        w = square_wave(1e6, 16e6, 32)
        assert np.array_equal(w[:16], w[16:32])

    def test_duty_cycle_half(self):
        w = square_wave(1e6, 64e6, 6400)
        assert abs(float(np.mean(w))) < 0.02

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            square_wave(0, 1e6, 10)


class TestHarmonics:
    def test_first_harmonic_amplitude(self):
        """Paper eq. (2): the fundamental has amplitude 4/pi."""
        w = square_wave_harmonics(1e6, 64e6, 6400, n_harmonics=1)
        assert float(np.max(np.abs(w))) == pytest.approx(4.0 / math.pi, rel=1e-3)

    def test_converges_to_square(self):
        exact = square_wave(1e6, 64e6, 640)
        approx = square_wave_harmonics(1e6, 64e6, 640, n_harmonics=50)
        # Sign agreement away from transitions.
        agree = np.mean(np.sign(approx) == exact)
        assert agree > 0.95

    def test_more_harmonics_closer(self):
        exact = square_wave(1e6, 64e6, 640)
        err1 = np.linalg.norm(square_wave_harmonics(1e6, 64e6, 640, 1) - exact)
        err9 = np.linalg.norm(square_wave_harmonics(1e6, 64e6, 640, 9) - exact)
        assert err9 < err1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            square_wave_harmonics(1e6, 64e6, 64, n_harmonics=0)


class TestHarmonicPower:
    def test_paper_values(self):
        """Paper: 3rd harmonic ~9.5 dB down, 5th ~14 dB down."""
        assert harmonic_power_db(3) == pytest.approx(-9.54, abs=0.01)
        assert harmonic_power_db(5) == pytest.approx(-13.98, abs=0.01)

    def test_fundamental_is_zero(self):
        assert harmonic_power_db(1) == 0.0

    def test_even_rejected(self):
        with pytest.raises(ValueError):
            harmonic_power_db(2)


class TestTone:
    def test_unit_magnitude(self):
        t = tone(1e6, 16e6, 128)
        assert np.allclose(np.abs(t), 1.0)

    def test_phase_offset(self):
        t = tone(1e6, 16e6, 4, phase=np.pi / 2)
        assert t[0] == pytest.approx(1j)

    def test_constant(self):
        assert FIRST_HARMONIC_AMPLITUDE == pytest.approx(4.0 / math.pi)
