"""Unit tests for repro.phy.modulation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.modulation import (
    chips_per_frame,
    despread_reference,
    fractional_delay,
    ook_baseband,
    spread_bits,
    upsample_chips,
)
from repro.utils.bits import as_bit_array


class TestSpreadBits:
    def test_paper_example(self):
        """Sec. III-A: data "10" with PN "01001" encodes to "0100110110"."""
        out = spread_bits("10", as_bit_array("01001"))
        assert "".join(str(b) for b in out) == "0100110110"

    def test_bit_one_is_code(self):
        code = as_bit_array("0110")
        assert np.array_equal(spread_bits("1", code), code)

    def test_bit_zero_is_negation(self):
        code = as_bit_array("0110")
        assert np.array_equal(spread_bits("0", code), 1 - code)

    def test_length(self):
        assert spread_bits("1011", as_bit_array("010")).size == 12

    def test_empty_code_rejected(self):
        with pytest.raises(ValueError):
            spread_bits("1", np.zeros(0, dtype=np.uint8))

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=16))
    def test_despread_recovers_bits(self, bits):
        """Correlating each chip block with the reference recovers bits."""
        code = as_bit_array("01001101")
        chips = spread_bits(bits, code)
        ref = despread_reference(code)
        blocks = (chips.astype(np.float64)).reshape(len(bits), code.size)
        stats = blocks @ ref
        decisions = (stats > 0).astype(int)
        assert decisions.tolist() == list(bits)


class TestDespreadReference:
    def test_bipolar(self):
        ref = despread_reference(as_bit_array("101"))
        assert ref.tolist() == [1.0, -1.0, 1.0]


class TestUpsample:
    def test_repeat(self):
        out = upsample_chips([1, 0], 3)
        assert out.tolist() == [1, 1, 1, 0, 0, 0]

    def test_identity(self):
        out = upsample_chips([1, 0, 1], 1)
        assert out.tolist() == [1, 0, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            upsample_chips([1], 0)


class TestOokBaseband:
    def test_harmonic_gain_applied(self):
        out = ook_baseband(np.array([1.0]), amplitude=1.0)
        assert abs(out[0]) == pytest.approx(4.0 / np.pi)

    def test_no_harmonic_gain(self):
        out = ook_baseband(np.array([1.0]), amplitude=2.0, include_harmonic_gain=False)
        assert out[0] == pytest.approx(2.0)

    def test_zero_chip_silent(self):
        out = ook_baseband(np.array([0.0, 1.0]), amplitude=1j)
        assert out[0] == 0.0
        assert out[1] != 0.0

    def test_complex_amplitude_phase(self):
        out = ook_baseband(np.array([1.0]), amplitude=1j, include_harmonic_gain=False)
        assert out[0] == pytest.approx(1j)


class TestFractionalDelay:
    def test_integer_delay(self):
        out = fractional_delay(np.array([1.0, 2.0]), 3)
        assert out.tolist() == [0.0, 0.0, 0.0, 1.0, 2.0]

    def test_fractional_interpolates(self):
        out = fractional_delay(np.array([1.0]), 0.25)
        assert out[0] == pytest.approx(0.75)
        assert out[1] == pytest.approx(0.25)

    def test_energy_approximately_preserved_for_constant(self):
        sig = np.ones(100)
        out = fractional_delay(sig, 5.5)
        # Interior of a delayed constant block stays 1.0.
        assert np.allclose(out[7:100], 1.0)

    def test_total_length(self):
        out = fractional_delay(np.ones(4), 2, total_length=10)
        assert out.size == 10

    def test_truncation(self):
        out = fractional_delay(np.ones(10), 5, total_length=8)
        assert out.size == 8
        assert out[5:].tolist() == [1.0, 1.0, 1.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fractional_delay(np.ones(3), -1)

    def test_complex_signal(self):
        out = fractional_delay(np.array([1 + 1j]), 1.5)
        assert out[1] == pytest.approx(0.5 + 0.5j)


class TestChipsPerFrame:
    def test_basic(self):
        assert chips_per_frame(160, 64) == 10240

    def test_invalid(self):
        with pytest.raises(ValueError):
            chips_per_frame(-1, 64)
        with pytest.raises(ValueError):
            chips_per_frame(10, 0)


class TestFractionalDelayBoundary:
    """Regression tests for the epsilon-tolerant integer fast path.

    ``offset_chips * samples_per_chip`` can leave ~1e-16 of rounding
    dust on a logically-integer delay; comparing ``frac == 0.0``
    exactly used to push those calls down the interpolation path and
    grow the output by one smeared sample.
    """

    def test_exact_integer_delay_fast_path(self):
        out = fractional_delay(np.array([1.0, 2.0, 3.0]), 2.0)
        assert out.size == 5
        assert out.tolist() == [0.0, 0.0, 1.0, 2.0, 3.0]

    def test_rounding_dust_takes_same_fast_path(self):
        clean = fractional_delay(np.array([1.0, 2.0, 3.0]), 2.0)
        dusty = fractional_delay(np.array([1.0, 2.0, 3.0]), 2.0 + 1e-14)
        assert dusty.size == clean.size
        assert dusty.tolist() == clean.tolist()

    def test_real_fraction_still_interpolates(self):
        out = fractional_delay(np.array([1.0]), 2.5)
        assert out.size == 4
        assert out[2] == pytest.approx(0.5)
        assert out[3] == pytest.approx(0.5)

    def test_fraction_just_above_epsilon_interpolates(self):
        out = fractional_delay(np.array([1.0]), 1.0 + 1e-9)
        assert out.size == 3
        assert out[2] == pytest.approx(1e-9)
