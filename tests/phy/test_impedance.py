"""Unit tests for repro.phy.impedance."""

import math

import numpy as np
import pytest

from repro.phy.impedance import (
    CARRIER_HZ,
    DEFAULT_ANTENNA_IMPEDANCE,
    ImpedanceCodebook,
    PAPER_TERMINATIONS,
    SHIFT_HZ,
    Termination,
    default_codebook,
    reflection_coefficient,
)


class TestTermination:
    def test_capacitor_impedance(self):
        t = Termination("3pF", capacitance_f=3e-12, esr_ohm=0.0)
        z = t.impedance(2e9)
        expected = -1.0 / (2 * math.pi * 2e9 * 3e-12)
        assert z.real == 0.0
        assert z.imag == pytest.approx(expected)

    def test_inductor_impedance(self):
        t = Termination("2nH", inductance_h=2e-9, esr_ohm=0.0)
        z = t.impedance(2e9)
        assert z.imag == pytest.approx(2 * math.pi * 2e9 * 2e-9)

    def test_resistor(self):
        t = Termination("50", resistance_ohm=50.0, esr_ohm=0.0)
        assert t.impedance(2e9) == 50.0

    def test_open_is_large(self):
        z = Termination("open").impedance(2e9)
        assert abs(z) > 500.0

    def test_multi_component_rejected(self):
        t = Termination("bad", capacitance_f=1e-12, inductance_h=1e-9)
        with pytest.raises(ValueError):
            t.impedance(2e9)


class TestReflectionCoefficient:
    def test_matched_load_absorbs(self):
        z_ant = complex(50.0, 20.0)
        gamma = reflection_coefficient(z_ant.conjugate(), z_ant)
        assert abs(gamma) == pytest.approx(0.0, abs=1e-12)

    def test_pure_reactance_full_reflection(self):
        gamma = reflection_coefficient(complex(0, -30.0), complex(50.0, 0.0))
        assert abs(gamma) == pytest.approx(1.0, abs=1e-9)

    def test_short_into_real_antenna(self):
        gamma = reflection_coefficient(complex(0, 0), complex(50.0, 0.0))
        assert gamma == pytest.approx(-1.0)


class TestCodebook:
    def test_four_states(self):
        cb = default_codebook()
        assert len(cb) == 4

    def test_sorted_ascending_power(self):
        gains = default_codebook().amplitude_gains()
        assert np.all(np.diff(gains) > 0)

    def test_power_range_spans_several_db(self):
        """The ladder must give Algorithm 1 real authority (> 10 dB)."""
        assert default_codebook().power_range_db() > 10.0

    def test_distinct_steps(self):
        gains = default_codebook().amplitude_gains()
        steps_db = 20 * np.log10(gains[1:] / gains[:-1])
        assert np.all(steps_db > 1.0)

    def test_state_by_name(self):
        cb = default_codebook()
        state = cb.state_by_name("open")
        assert state.termination.name == "open"

    def test_state_by_name_missing(self):
        with pytest.raises(KeyError):
            default_codebook().state_by_name("42ohm")

    def test_amplitude_gain_definition(self):
        cb = default_codebook()
        for state in cb.states:
            assert state.amplitude_gain == pytest.approx(abs(state.gamma) / 2.0)

    def test_power_gain_db(self):
        state = default_codebook()[3]
        assert state.power_gain_db == pytest.approx(
            20 * math.log10(abs(state.gamma) / 2), abs=1e-9
        )

    def test_summary_keys(self):
        names = set(default_codebook().summary())
        assert names == {"3pF", "1pF", "open", "2nH"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ImpedanceCodebook([])

    def test_operating_frequency_is_shifted(self):
        cb = default_codebook()
        assert cb.freq_hz == CARRIER_HZ + SHIFT_HZ

    def test_custom_antenna_changes_gains(self):
        a = ImpedanceCodebook(PAPER_TERMINATIONS, antenna_impedance=complex(50, 0))
        b = ImpedanceCodebook(PAPER_TERMINATIONS, antenna_impedance=DEFAULT_ANTENNA_IMPEDANCE)
        assert not np.allclose(a.amplitude_gains(), b.amplitude_gains())

    def test_unsorted_preserves_order(self):
        cb = ImpedanceCodebook(PAPER_TERMINATIONS, sort_by_power=False)
        names = [s.termination.name for s in cb.states]
        assert names == [t.name for t in PAPER_TERMINATIONS]
