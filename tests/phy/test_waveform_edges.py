"""Unit tests for waveform_from_edges and the non-ideal clock path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.modulation import fractional_delay, upsample_chips, waveform_from_edges
from repro.tag.oscillator import TagOscillator


class TestWaveformFromEdges:
    def test_matches_ideal_pipeline(self):
        """Regular edges must reproduce upsample + fractional delay."""
        chips = np.array([1, 0, 1, 1, 0, 1, 0, 0], dtype=np.uint8)
        spc = 4
        for offset in (0.0, 0.25, 1.6):
            edges = np.arange(chips.size + 1) + offset
            a = waveform_from_edges(chips, edges, spc)
            b = fractional_delay(
                upsample_chips(chips.astype(float), spc), offset * spc, total_length=a.size
            )
            assert np.allclose(a, b, atol=1e-12)

    def test_edge_count_validated(self):
        with pytest.raises(ValueError):
            waveform_from_edges([1, 0], np.array([0.0, 1.0]), 2)

    def test_decreasing_edges_rejected(self):
        with pytest.raises(ValueError):
            waveform_from_edges([1, 0], np.array([0.0, 2.0, 1.0]), 2)

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            waveform_from_edges([1], np.array([-1.0, 1.0]), 2)

    def test_output_bounded_zero_one(self):
        rng = np.random.default_rng(0)
        chips = rng.integers(0, 2, 50)
        edges = np.maximum.accumulate(np.arange(51) + rng.normal(0, 0.2, 51))
        edges -= edges.min()
        out = waveform_from_edges(chips, edges, 2)
        assert out.min() >= -1e-12
        assert out.max() <= 1.0 + 1e-12

    def test_total_energy_matches_on_time(self):
        """Integral of the waveform equals total ON duration in samples."""
        chips = np.array([1, 1, 0, 1], dtype=np.uint8)
        edges = np.array([0.0, 1.3, 2.1, 3.0, 4.4])
        spc = 8
        out = waveform_from_edges(chips, edges, spc, total_length=64)
        on_duration = (1.3 - 0.0) + (2.1 - 1.3) + (4.4 - 3.0)
        assert out.sum() == pytest.approx(on_duration * spc, rel=1e-9)

    def test_total_length_respected(self):
        out = waveform_from_edges([1, 1], np.array([0.0, 1.0, 2.0]), 2, total_length=10)
        assert out.size == 10

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_ideal_equivalence_property(self, chips, offset):
        chips = np.array(chips, dtype=np.uint8)
        spc = 2
        edges = np.arange(chips.size + 1, dtype=np.float64) + offset
        a = waveform_from_edges(chips, edges, spc)
        b = fractional_delay(
            upsample_chips(chips.astype(float), spc), offset * spc, total_length=a.size
        )
        assert np.allclose(a, b, atol=1e-9)


class TestOscillatorEdges:
    def test_is_ideal(self):
        assert TagOscillator().is_ideal
        assert TagOscillator(offset_chips=5.0).is_ideal  # offset alone stays ideal
        assert not TagOscillator(drift_ppm=10.0).is_ideal
        assert not TagOscillator(jitter_chips_rms=0.01).is_ideal

    def test_jittered_edges_monotone(self):
        osc = TagOscillator(jitter_chips_rms=0.5)
        edges = osc.chip_edges(1000, np.random.default_rng(0))
        assert np.all(np.diff(edges) >= 0)

    def test_drift_accumulates(self):
        osc = TagOscillator(drift_ppm=1000.0)
        edges = osc.chip_edges(10001)
        slip = 10000 - (edges[-1] - edges[0])
        assert slip == pytest.approx(10000 * 1000e-6, rel=0.01)


class TestJitterInSimulation:
    def test_nonideal_path_still_decodes(self):
        """Crystal-grade imperfection must not break the link."""
        from repro.channel.geometry import Deployment
        from repro.sim.network import CbmaConfig, CbmaNetwork

        cfg = CbmaConfig(
            n_tags=2, seed=41, jitter_chips_rms=0.02, drift_ppm_sigma=20.0
        )
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        assert net.run_rounds(15).fer < 0.3

    def test_rc_clock_breaks_the_link(self):
        from repro.channel.geometry import Deployment
        from repro.sim.network import CbmaConfig, CbmaNetwork

        cfg = CbmaConfig(n_tags=2, seed=41, drift_ppm_sigma=2000.0)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        assert net.run_rounds(10).fer > 0.7
