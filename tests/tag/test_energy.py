"""Unit tests for repro.tag.energy."""

import pytest

from repro.channel.pathloss import LinkBudget
from repro.tag.energy import EnergyHarvester, EnergyStore, TagEnergyModel


class TestEnergyHarvester:
    def test_inverse_square(self):
        h = EnergyHarvester()
        assert h.incident_power_w(1.0) / h.incident_power_w(2.0) == pytest.approx(4.0)

    def test_sensitivity_cliff(self):
        h = EnergyHarvester()
        assert h.harvested_power_w(50.0) == 0.0

    def test_efficiency_applied(self):
        h = EnergyHarvester(efficiency=0.5)
        d = 0.5
        assert h.harvested_power_w(d) == pytest.approx(0.5 * h.incident_power_w(d))

    def test_more_tx_power_more_harvest(self):
        lo = EnergyHarvester(budget=LinkBudget(tx_power_dbm=10.0))
        hi = EnergyHarvester(budget=LinkBudget(tx_power_dbm=20.0))
        assert hi.incident_power_w(1.0) == pytest.approx(10 * lo.incident_power_w(1.0))

    def test_near_field_floor(self):
        h = EnergyHarvester()
        assert h.incident_power_w(0.0) == h.incident_power_w(0.05)


class TestEnergyStore:
    def test_capacity(self):
        s = EnergyStore(capacitance_f=10e-6, max_voltage=2.0)
        assert s.capacity_j == pytest.approx(20e-6)

    def test_charge_clamps_at_capacity(self):
        s = EnergyStore(level_j=0.0)
        s.charge(1.0, 1.0)  # absurd power
        assert s.level_j == s.capacity_j

    def test_leakage_drains(self):
        s = EnergyStore(level_j=1e-6, leak_w=1e-7)
        s.charge(0.0, 5.0)
        assert s.level_j == pytest.approx(0.5e-6)

    def test_never_negative(self):
        s = EnergyStore(level_j=1e-9)
        s.charge(0.0, 1e6)
        assert s.level_j == 0.0

    def test_draw(self):
        s = EnergyStore(level_j=1e-6)
        assert s.draw(4e-7)
        assert s.level_j == pytest.approx(6e-7)
        assert not s.draw(1e-6)

    def test_validation(self):
        s = EnergyStore()
        with pytest.raises(ValueError):
            s.charge(1.0, -1.0)
        with pytest.raises(ValueError):
            s.draw(-1.0)


class TestTagEnergyModel:
    def test_frame_energy(self):
        m = TagEnergyModel(active_power_w=5e-6)
        assert m.frame_energy_j(0.01) == pytest.approx(5e-8)

    def test_cannot_transmit_when_empty(self):
        m = TagEnergyModel()
        m.store.level_j = 0.0
        assert not m.can_transmit(0.01)

    def test_step_charges_then_transmits(self):
        m = TagEnergyModel()
        # Harvest at 0.5 m for a while.
        for _ in range(200):
            m.step(0.5, dt_s=0.01, transmitting=False)
        assert m.can_transmit(0.01)
        assert m.step(0.5, dt_s=0.01, transmitting=True, frame_duration_s=0.01)

    def test_duty_cycle_monotone_in_distance(self):
        m = TagEnergyModel()
        duties = [m.sustainable_duty_cycle(d) for d in (0.3, 1.0, 2.0, 3.0)]
        assert all(a >= b for a, b in zip(duties, duties[1:]))

    def test_duty_cycle_range(self):
        m = TagEnergyModel()
        assert m.sustainable_duty_cycle(0.2) == 1.0
        assert m.sustainable_duty_cycle(60.0) == 0.0

    def test_paper_geometry_is_energy_feasible(self):
        """At the paper's 0.5 m ES-tag distance a tag runs full duty."""
        assert TagEnergyModel().sustainable_duty_cycle(0.5) == 1.0

    def test_max_range_ordering(self):
        m = TagEnergyModel()
        assert m.max_range_m(1.0) <= m.max_range_m(0.1)

    def test_max_range_validation(self):
        with pytest.raises(ValueError):
            TagEnergyModel().max_range_m(0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TagEnergyModel().frame_energy_j(-1.0)
