"""Unit tests for repro.tag.framing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tag.framing import (
    DEFAULT_PREAMBLE,
    Frame,
    FrameError,
    FrameFormat,
    MAX_PAYLOAD_BYTES,
)
from repro.utils.bits import as_bit_array


class TestFrameFormat:
    def test_default_preamble_is_paper_byte(self):
        fmt = FrameFormat()
        assert "".join(str(b) for b in fmt.preamble) == "10101010" == DEFAULT_PREAMBLE

    def test_with_preamble_bits_alternating(self):
        fmt = FrameFormat.with_preamble_bits(5)
        assert fmt.preamble.tolist() == [1, 0, 1, 0, 1]

    def test_with_preamble_bits_invalid(self):
        with pytest.raises(ValueError):
            FrameFormat.with_preamble_bits(0)

    def test_overhead_bits(self):
        fmt = FrameFormat()
        # 8 preamble + 8 length + 16 CRC.
        assert fmt.overhead_bits() == 32

    def test_frame_bits(self):
        fmt = FrameFormat()
        assert fmt.frame_bits(10) == 32 + 80

    def test_frame_bits_bounds(self):
        with pytest.raises(ValueError):
            FrameFormat().frame_bits(127)


class TestBuildParse:
    def test_roundtrip(self):
        fmt = FrameFormat()
        payload = b"hello, backscatter"
        frame = fmt.parse(fmt.build(payload))
        assert frame.payload == payload

    def test_empty_payload(self):
        fmt = FrameFormat()
        assert fmt.parse(fmt.build(b"")).payload == b""

    def test_max_payload(self):
        fmt = FrameFormat()
        payload = bytes(range(256))[:MAX_PAYLOAD_BYTES]
        assert fmt.parse(fmt.build(payload)).payload == payload

    def test_oversize_payload_rejected(self):
        with pytest.raises(ValueError):
            FrameFormat().build(b"x" * (MAX_PAYLOAD_BYTES + 1))

    def test_corrupt_payload_fails_crc(self):
        fmt = FrameFormat()
        bits = fmt.build(b"abcdef").copy()
        bits[fmt.header_bits() + 5] ^= 1
        with pytest.raises(FrameError, match="CRC"):
            fmt.parse(bits)

    def test_corrupt_length_detected(self):
        fmt = FrameFormat()
        bits = fmt.build(b"abcdef").copy()
        # Flip the MSB of the length byte -> implausible or truncated.
        bits[fmt.preamble_bits] ^= 1
        with pytest.raises(FrameError):
            fmt.parse(bits)

    def test_bad_preamble_rejected(self):
        fmt = FrameFormat()
        bits = fmt.build(b"xyz").copy()
        bits[0] ^= 1
        with pytest.raises(FrameError, match="preamble"):
            fmt.parse(bits)

    def test_preamble_check_can_be_skipped(self):
        fmt = FrameFormat()
        bits = fmt.build(b"xyz").copy()
        bits[0] ^= 1
        assert fmt.parse(bits, check_preamble=False).payload == b"xyz"

    def test_truncated(self):
        fmt = FrameFormat()
        bits = fmt.build(b"a long enough payload")
        with pytest.raises(FrameError):
            fmt.parse(bits[:40])

    def test_too_short_for_header(self):
        with pytest.raises(FrameError):
            FrameFormat().parse(as_bit_array("1010"))

    def test_trailing_bits_ignored(self):
        """Extra bits after the CRC (next frame, noise) must not break parsing."""
        fmt = FrameFormat()
        bits = np.concatenate([fmt.build(b"data"), as_bit_array("10110011")])
        assert fmt.parse(bits).payload == b"data"

    @given(st.binary(max_size=MAX_PAYLOAD_BYTES))
    def test_roundtrip_property(self, payload):
        fmt = FrameFormat()
        assert fmt.parse(fmt.build(payload)).payload == payload

    @given(st.binary(min_size=1, max_size=32), st.data())
    def test_single_bit_flip_never_accepted_quietly(self, payload, draw):
        """Any single-bit corruption after the preamble must raise."""
        fmt = FrameFormat()
        bits = fmt.build(payload).copy()
        pos = draw.draw(st.integers(fmt.preamble_bits, bits.size - 1))
        bits[pos] ^= 1
        try:
            frame = fmt.parse(bits)
        except FrameError:
            return
        # Parsing may only succeed if it decoded the original payload
        # (impossible with a flipped bit covered by the CRC).
        assert frame.payload != payload or False, "corrupted frame accepted"


class TestFrame:
    def test_to_bits_roundtrip(self):
        frame = Frame(payload=b"ping")
        fmt = frame.fmt
        assert fmt.parse(frame.to_bits()).payload == b"ping"

    def test_n_bits(self):
        frame = Frame(payload=b"ping")
        assert frame.n_bits == frame.to_bits().size

    def test_varied_preamble_roundtrip(self):
        for n in (4, 16, 64):
            fmt = FrameFormat.with_preamble_bits(n)
            assert fmt.parse(fmt.build(b"zz")).payload == b"zz"
