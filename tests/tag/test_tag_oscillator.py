"""Unit tests for repro.tag.tag and repro.tag.oscillator."""

import numpy as np
import pytest

from repro.codes import twonc_codes
from repro.phy.modulation import spread_bits
from repro.tag.framing import FrameFormat
from repro.tag.oscillator import TagOscillator
from repro.tag.tag import Tag, TagStats


class TestOscillator:
    def test_ideal_edges(self):
        osc = TagOscillator()
        assert osc.chip_edges(4).tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_offset(self):
        osc = TagOscillator(offset_chips=2.5)
        assert osc.chip_edges(2).tolist() == [2.5, 3.5]

    def test_drift_compresses_spacing(self):
        fast = TagOscillator(drift_ppm=1000.0)
        edges = fast.chip_edges(1001)
        spacing = edges[-1] - edges[-2]
        assert spacing < 1.0

    def test_jitter_statistics(self):
        osc = TagOscillator(jitter_chips_rms=0.05)
        edges = osc.chip_edges(10_000, np.random.default_rng(0))
        residuals = edges - np.arange(10_000)
        assert float(np.std(residuals)) == pytest.approx(0.05, rel=0.1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            TagOscillator().chip_edges(-1)

    def test_total_delay_samples(self):
        assert TagOscillator(offset_chips=3.0).total_delay_samples(4) == 12.0

    def test_total_delay_invalid_spc(self):
        with pytest.raises(ValueError):
            TagOscillator().total_delay_samples(0)

    def test_random_factory_ranges(self):
        osc = TagOscillator.random(np.random.default_rng(1), max_offset_chips=5.0)
        assert 0.0 <= osc.offset_chips <= 5.0


class TestTagStats:
    def test_ack_ratio(self):
        stats = TagStats(sent=10, acked=7)
        assert stats.ack_ratio == 0.7

    def test_ack_ratio_no_traffic(self):
        assert TagStats().ack_ratio == 1.0

    def test_reset(self):
        stats = TagStats(sent=5, acked=3)
        stats.reset()
        assert stats.sent == 0 and stats.acked == 0


class TestTag:
    def _tag(self, **kw):
        return Tag(0, twonc_codes(1, 32)[0], **kw)

    def test_default_impedance_mid_ladder(self):
        assert self._tag().impedance_index == 1

    def test_encode_is_framed_and_spread(self):
        tag = self._tag()
        payload = b"data!"
        expected = spread_bits(tag.fmt.build(payload), tag.code)
        assert np.array_equal(tag.encode(payload), expected)

    def test_chip_stream_upsampled(self):
        tag = self._tag()
        chips = tag.encode(b"x")
        stream = tag.chip_stream(b"x", samples_per_chip=3)
        assert stream.size == 3 * chips.size

    def test_step_impedance_cyclic(self):
        tag = self._tag()
        n = len(tag.codebook)
        start = tag.impedance_index
        for _ in range(n):
            tag.step_impedance()
        assert tag.impedance_index == start

    def test_set_impedance_bounds(self):
        tag = self._tag()
        with pytest.raises(ValueError):
            tag.set_impedance(99)

    def test_delta_gamma_tracks_state(self):
        tag = self._tag()
        tag.set_impedance(0)
        weak = tag.delta_gamma
        tag.set_impedance(len(tag.codebook) - 1)
        assert tag.delta_gamma > weak

    def test_amplitude_gain_half_delta_gamma(self):
        tag = self._tag()
        assert tag.amplitude_gain == pytest.approx(tag.delta_gamma / 2)

    def test_record_and_reset(self):
        tag = self._tag()
        tag.record_result(True)
        tag.record_result(False)
        assert tag.stats.sent == 2
        assert tag.stats.acked == 1
        tag.reset_epoch()
        assert tag.stats.sent == 0

    def test_empty_code_rejected(self):
        with pytest.raises(ValueError):
            Tag(0, np.zeros(0, dtype=np.uint8))

    def test_invalid_initial_impedance(self):
        with pytest.raises(ValueError):
            self._tag(impedance_index=17)

    def test_custom_format_used(self):
        fmt = FrameFormat.with_preamble_bits(16)
        tag = self._tag(fmt=fmt)
        assert tag.encode(b"").size == fmt.frame_bits(0) * tag.code.size


class TestIsIdealBoundary:
    """Regression tests for tolerance-based is_ideal (was ``== 0.0``)."""

    def test_default_oscillator_is_ideal(self):
        assert TagOscillator().is_ideal

    def test_rounding_dust_still_ideal(self):
        assert TagOscillator(drift_ppm=1e-12, jitter_chips_rms=1e-12).is_ideal

    def test_negative_dust_still_ideal(self):
        assert TagOscillator(drift_ppm=-1e-12).is_ideal

    def test_real_drift_not_ideal(self):
        assert not TagOscillator(drift_ppm=20.0).is_ideal

    def test_real_jitter_not_ideal(self):
        assert not TagOscillator(jitter_chips_rms=0.05).is_ideal
