"""Unit tests for repro.system (the full deployment life cycle)."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment, Room
from repro.channel.mobility import RandomWalk
from repro.sim.network import CbmaConfig
from repro.system import CbmaSystem


def _system(population=8, group=3, seed=5, **kw):
    dep = Deployment.random(
        population, rng=seed, room=Room(width=1.6, depth=1.2), min_spacing=0.12
    )
    cfg = CbmaConfig(n_tags=group, seed=seed)
    return CbmaSystem(cfg, dep, **kw)


class TestConstruction:
    def test_population_must_cover_group(self):
        dep = Deployment.random(2, rng=1, room=Room(width=1.6, depth=1.2))
        with pytest.raises(ValueError):
            CbmaSystem(CbmaConfig(n_tags=4, seed=1), dep)

    def test_population_property(self):
        assert _system(population=8).population == 8


class TestEpochs:
    def test_epoch_report_fields(self):
        sys_ = _system()
        report = sys_.run_epoch(rounds=6)
        assert report.epoch == 0
        assert len(report.group) == 3
        assert report.power_control_ran
        assert 0.0 <= report.fer <= 1.0
        assert report.frames_sent == 18

    def test_epoch_counter_advances(self):
        sys_ = _system()
        reports = sys_.run(3, rounds_per_epoch=4)
        assert [r.epoch for r in reports] == [0, 1, 2]

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            _system().run(-1)

    def test_power_control_cached_per_group(self):
        """The same static group composition balances only once."""
        sys_ = _system(population=3, group=3)  # only one possible group
        first = sys_.run_epoch(rounds=4)
        second = sys_.run_epoch(rounds=4)
        assert first.power_control_ran
        assert not second.power_control_ran

    def test_mobility_invalidates_cache(self):
        sys_ = _system(
            population=3, group=3,
            mobility=RandomWalk(step_sigma_m=0.5), mobility_dt_s=1.0,
            reposition_tolerance_m=0.01,
        )
        sys_.run_epoch(rounds=4)
        second = sys_.run_epoch(rounds=4)
        assert second.power_control_ran  # tags moved too far

    def test_groups_rotate(self):
        sys_ = _system(population=8, group=3)
        groups = {tuple(sorted(sys_.run_epoch(rounds=3).group)) for _ in range(6)}
        assert len(groups) > 1


class TestAccounting:
    def test_cumulative_metrics_grow(self):
        sys_ = _system()
        sys_.run(2, rounds_per_epoch=5)
        assert sys_.metrics.frames_sent == 2 * 5 * 3
        assert 0.0 <= sys_.metrics.fer <= 1.0

    def test_per_tag_delivery_keys(self):
        sys_ = _system(population=6, group=3)
        sys_.run(2, rounds_per_epoch=4)
        delivery = sys_.per_tag_delivery()
        assert set(delivery) == set(range(6))
        assert all(0.0 <= v <= 1.0 for v in delivery.values())

    def test_fairness_improves_with_epochs(self):
        sys_ = _system(population=8, group=3)
        sys_.run(2, rounds_per_epoch=2)
        early = sys_.fairness()
        sys_.run(12, rounds_per_epoch=2)
        late = sys_.fairness()
        assert late >= early - 0.05

    def test_reproducible(self):
        a = _system(seed=11)
        b = _system(seed=11)
        ra = a.run(2, rounds_per_epoch=4)
        rb = b.run(2, rounds_per_epoch=4)
        assert [r.group for r in ra] == [r.group for r in rb]
        assert [r.fer for r in ra] == [r.fer for r in rb]
