"""Unit tests for repro.bench (runner, report persistence, baseline gate)."""

import json

import numpy as np
import pytest

from repro.bench import (
    BENCH_ID,
    SCHEMA,
    BenchReport,
    OpResult,
    compare_to_baseline,
    run_bench,
)
from repro.bench.workloads import Workload, build_workloads
from repro.obs.tracer import Tracer


def _op(name, p50, params=None, group="micro"):
    return OpResult(
        op=name,
        group=group,
        params=params or {},
        reps=3,
        p50_s=p50,
        p95_s=p50 * 1.2,
        mean_s=p50,
        min_s=p50 * 0.9,
        max_s=p50 * 1.3,
    )


def _tiny_workloads():
    sink = []
    return [
        Workload("noop_a", {"k": 1}, lambda: sink.append(1), reps=3),
        Workload("noop_b", {"k": 2}, lambda: sink.append(2), reps=2, group="detect"),
    ]


class TestRunBench:
    def test_runs_custom_workloads_and_summarises(self):
        report = run_bench(workloads=_tiny_workloads(), seed=11)
        assert report.seed == 11
        assert report.bench_id == BENCH_ID
        assert [op.op for op in report.ops] == ["noop_a", "noop_b"]
        a = report.op("noop_a")
        assert a is not None
        assert a.reps == 3
        assert 0.0 <= a.min_s <= a.p50_s <= a.p95_s <= a.max_s
        assert a.params == {"k": 1}
        assert report.op("noop_b").group == "detect"
        assert report.op("missing") is None
        assert set(report.env) >= {"python", "numpy", "platform"}

    def test_samples_flow_through_tracer_taxonomy(self):
        """Per-rep latencies land as bench.<op>.op_s gauges plus a
        bench.<op>.reps counter -- the obs pipeline sees the benchmark."""
        tracer = Tracer()
        run_bench(workloads=_tiny_workloads(), tracer=tracer)
        assert len(tracer.gauges["bench.noop_a.op_s"]) == 3
        assert len(tracer.gauges["bench.noop_b.op_s"]) == 2
        assert tracer.counters["bench.noop_a.reps"] == 3
        spans = [r for r in tracer.records if r.name == "bench"]
        assert len(spans) == 5

    def test_derived_speedups(self):
        workloads = [
            Workload("detect_direct", {}, lambda: None, reps=2, group="detect"),
            Workload("detect_fft", {}, lambda: None, reps=2, group="detect"),
        ]
        report = run_bench(workloads=workloads)
        # Both ops are near-instant; the ratio exists and is positive.
        assert report.derived["detect_speedup_fft_over_direct"] > 0

    def test_standard_quick_suite_shape(self):
        """The quick suite covers all four tiers with the acceptance
        detect ops present (without timing it here -- just the build)."""
        ops = {w.op for w in build_workloads(quick=True, seed=7)}
        assert {"detect_direct", "detect_fft", "detect_pipeline"} <= ops
        assert any(op.startswith("corr_fft_w") for op in ops)
        assert any(op.startswith("e2e_decode_10tag_p") for op in ops)
        assert {"farm_decode_w1", "farm_decode_w2", "farm_decode_w4"} <= ops
        assert {"gateway_soak", "gateway_soak_migrate", "gateway_admission"} <= ops

    @pytest.mark.parametrize("tier", ["micro", "detect", "e2e", "farm", "gateway"])
    def test_tier_selection(self, tier):
        workloads = build_workloads(quick=True, seed=7, tier=tier)
        assert workloads
        assert {w.group for w in workloads} == {tier}

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            build_workloads(quick=True, tier="nano")

    def test_farm_derived_metrics(self):
        """Scaling ratios and the capacity figures come from params,
        not from running a real farm."""
        workloads = [
            Workload(
                f"farm_decode_w{w}",
                {"n_workers": w, "n_sessions": 4, "stream_seconds": 0.5},
                lambda: None,
                reps=2,
                group="farm",
            )
            for w in (1, 2)
        ]
        report = run_bench(workloads=workloads)
        d = report.derived
        assert d["farm_speedup_2w_over_1w"] > 0
        assert d["farm_realtime_factor_w1"] > 0
        assert d["farm_sessions_per_core_w2"] == pytest.approx(
            d["farm_realtime_factor_w2"] / 2
        )

    def test_gateway_derived_metrics(self):
        """Service real-time factor, admission throughput and the
        migration-overhead ratio come from params, not a real soak."""
        workloads = [
            Workload(
                "gateway_soak",
                {"n_streams": 8, "decoded_seconds": 0.25},
                lambda: None,
                reps=2,
                group="gateway",
            ),
            Workload(
                "gateway_soak_migrate",
                {"n_streams": 8, "decoded_seconds": 0.25, "migrate_round": 3},
                lambda: None,
                reps=2,
                group="gateway",
            ),
            Workload(
                "gateway_admission",
                {"n_decisions": 1000},
                lambda: None,
                reps=2,
                group="gateway",
            ),
        ]
        report = run_bench(workloads=workloads)
        d = report.derived
        assert d["gateway_soak_realtime_factor"] > 0
        assert d["gateway_soak_migrate_realtime_factor"] > 0
        assert d["gateway_admissions_per_sec"] > 0
        assert d["gateway_migration_overhead"] == pytest.approx(
            report.op("gateway_soak_migrate").p50_s
            / report.op("gateway_soak").p50_s
        )


class TestReportPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        report = BenchReport(
            ops=[_op("x", 0.5, {"n": 4}), _op("y", 0.25, group="e2e")],
            derived={"speedup": 2.0},
            quick=True,
            seed=3,
            env={"python": "3.x"},
        )
        path = report.save(tmp_path / "BENCH_TEST.json")
        loaded = BenchReport.load(path)
        assert loaded == report

    def test_schema_is_versioned(self, tmp_path):
        report = BenchReport(ops=[_op("x", 0.1)])
        data = json.loads(report.to_json())
        assert data["schema"] == SCHEMA
        assert data["bench_id"] == BENCH_ID

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.bench/999", "ops": []}))
        with pytest.raises(ValueError, match="schema"):
            BenchReport.load(path)

    def test_committed_baseline_parses(self):
        """The checked-in trajectory file must always stay loadable."""
        baseline = BenchReport.load("benchmarks/BENCH_0008.json")
        assert baseline.bench_id == BENCH_ID
        assert baseline.op("detect_fft") is not None
        assert baseline.derived["detect_speedup_fft_over_direct"] >= 3.0
        assert baseline.op("farm_decode_w4") is not None
        assert "farm_sessions_per_core_w1" in baseline.derived
        assert baseline.op("macro_engine_slotted") is not None
        assert "macro_engine_slotted_events_per_sec" in baseline.derived


class TestBaselineGate:
    def test_no_regression_within_factor(self):
        baseline = BenchReport(ops=[_op("x", 0.100)])
        current = BenchReport(ops=[_op("x", 0.150)])
        assert compare_to_baseline(current, baseline, max_regression=2.0) == []

    def test_regression_past_factor_flagged(self):
        baseline = BenchReport(ops=[_op("x", 0.100)])
        current = BenchReport(ops=[_op("x", 0.250)])
        regressions = compare_to_baseline(current, baseline, max_regression=2.0)
        assert len(regressions) == 1
        reg = regressions[0]
        assert reg.op == "x"
        assert reg.ratio == pytest.approx(2.5)
        assert "x:" in str(reg) and "2.50x" in str(reg)

    def test_params_change_is_not_a_regression(self):
        """A changed workload is a new measurement, not a regression."""
        baseline = BenchReport(ops=[_op("x", 0.001, {"n": 4096})])
        current = BenchReport(ops=[_op("x", 9.999, {"n": 8192})])
        assert compare_to_baseline(current, baseline) == []

    def test_new_and_retired_ops_ignored(self):
        baseline = BenchReport(ops=[_op("old", 0.1)])
        current = BenchReport(ops=[_op("new", 99.0)])
        assert compare_to_baseline(current, baseline) == []

    def test_zero_baseline_skipped(self):
        baseline = BenchReport(ops=[_op("x", 0.0)])
        current = BenchReport(ops=[_op("x", 1.0)])
        assert compare_to_baseline(current, baseline) == []


class TestWorkloadDeterminism:
    def test_collision_buffers_are_seeded(self):
        from repro.bench.workloads import _collision_buffer

        iq_a, codes_a, _ = _collision_buffer(3, 2, 2, seed=5)
        iq_b, codes_b, _ = _collision_buffer(3, 2, 2, seed=5)
        assert np.array_equal(iq_a, iq_b)
        assert codes_a.keys() == codes_b.keys()
        iq_c, _, _ = _collision_buffer(3, 2, 2, seed=6)
        assert not np.array_equal(iq_a, iq_c)
