"""CLI smoke tests for ``repro bench``."""

import json

import pytest

from repro.bench import SCHEMA, BenchReport
from repro.cli import main


@pytest.fixture()
def tiny_suite(monkeypatch):
    """Swap the standard workloads for instant ones: the CLI tests
    exercise plumbing (report, baseline gate, exit codes), not timing."""
    from repro.bench import runner
    from repro.bench.workloads import Workload

    def fake_build(quick=False, seed=7, tier="all"):
        workloads = [
            Workload("detect_direct", {"n_tags": 2}, lambda: None, reps=2, group="detect"),
            Workload("detect_fft", {"n_tags": 2}, lambda: None, reps=2, group="detect"),
            Workload("farm_decode_w1", {"n_workers": 1}, lambda: None, reps=2, group="farm"),
        ]
        if tier != "all":
            workloads = [w for w in workloads if w.group == tier]
        return workloads

    monkeypatch.setattr(runner, "build_workloads", fake_build)


class TestBenchCommand:
    def test_writes_trajectory_file(self, tiny_suite, tmp_path, capsys):
        out = tmp_path / "BENCH_0006.json"
        assert main(["bench", "--quick", "--output", str(out)]) == 0
        report = BenchReport.load(out)
        assert report.quick is True
        assert {op.op for op in report.ops} == {
            "detect_direct",
            "detect_fft",
            "farm_decode_w1",
        }
        stdout = capsys.readouterr().out
        assert "detect_fft" in stdout
        assert str(out) in stdout

    def test_tier_flag_filters_workloads(self, tiny_suite, tmp_path):
        out = tmp_path / "farm.json"
        assert main(["bench", "--tier", "farm", "--output", str(out)]) == 0
        report = BenchReport.load(out)
        assert {op.op for op in report.ops} == {"farm_decode_w1"}

    def test_json_output_parses(self, tiny_suite, tmp_path, capsys):
        out = tmp_path / "b.json"
        assert main(["bench", "--output", str(out), "--json"]) == 0
        stdout = capsys.readouterr().out
        data = json.loads(stdout[: stdout.rindex("}") + 1])
        assert data["schema"] == SCHEMA

    def test_baseline_gate_passes_against_self(self, tiny_suite, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["bench", "--output", str(base)]) == 0
        out = tmp_path / "b.json"
        assert (
            main(["bench", "--output", str(out), "--baseline", str(base),
                  "--max-regression", "1e9"]) == 0
        )

    def test_baseline_regression_fails(self, tiny_suite, tmp_path, capsys):
        """An impossibly strict factor makes any nonzero latency a
        regression: the command must exit nonzero and say why."""
        base = tmp_path / "base.json"
        assert main(["bench", "--output", str(base)]) == 0
        baseline = BenchReport.load(base)
        assert all(op.p50_s > 0 for op in baseline.ops)
        out = tmp_path / "b.json"
        rc = main(["bench", "--output", str(out), "--baseline", str(base),
                   "--max-regression", "1e-12"])
        assert rc == 1
        assert "regress" in capsys.readouterr().out.lower()
