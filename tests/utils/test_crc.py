"""Unit tests for repro.utils.crc."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import bytes_to_bits
from repro.utils.crc import CRC16_CCITT, CRC16_IBM, Crc16, crc16_ccitt, crc16_ibm


class TestKnownVectors:
    """Check values against the published check words for '123456789'."""

    def test_ccitt_false_check(self):
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_ibm_arc_check(self):
        assert crc16_ibm(b"123456789") == 0xBB3D

    def test_empty_ccitt(self):
        assert crc16_ccitt(b"") == 0xFFFF  # init value, no data processed

    def test_single_byte_changes_crc(self):
        assert crc16_ccitt(b"a") != crc16_ccitt(b"b")


class TestBitsInterface:
    def test_compute_bits_matches_bytes(self):
        data = b"\x01\x02\x03"
        bits = bytes_to_bits(data)
        crc_bits = CRC16_CCITT.compute_bits(bits)
        expected = crc16_ccitt(data)
        value = int("".join(str(b) for b in crc_bits), 2)
        assert value == expected

    def test_check_bits_accepts(self):
        bits = bytes_to_bits(b"hello123")
        crc_bits = CRC16_CCITT.compute_bits(bits)
        assert CRC16_CCITT.check_bits(bits, crc_bits)

    def test_check_bits_rejects_flip(self):
        bits = bytes_to_bits(b"hello123").copy()
        crc_bits = CRC16_CCITT.compute_bits(bits)
        bits[3] ^= 1
        assert not CRC16_CCITT.check_bits(bits, crc_bits)

    def test_check_bits_wrong_width(self):
        bits = bytes_to_bits(b"xy")
        with pytest.raises(ValueError):
            CRC16_CCITT.check_bits(bits, np.zeros(8, dtype=np.uint8))


class TestErrorDetection:
    """CRC-16 must catch all single- and double-bit errors and any
    burst shorter than 17 bits -- the guarantees framing relies on."""

    @given(st.binary(min_size=2, max_size=32), st.data())
    def test_detects_single_bit_error(self, data, draw):
        bits = bytes_to_bits(data).copy()
        crc = CRC16_CCITT.compute_bits(bits)
        pos = draw.draw(st.integers(0, bits.size - 1))
        bits[pos] ^= 1
        assert not CRC16_CCITT.check_bits(bits, crc)

    @given(st.binary(min_size=3, max_size=32), st.data())
    def test_detects_burst_up_to_16(self, data, draw):
        bits = bytes_to_bits(data).copy()
        crc = CRC16_CCITT.compute_bits(bits)
        burst_len = draw.draw(st.integers(1, min(16, bits.size)))
        start = draw.draw(st.integers(0, bits.size - burst_len))
        # A burst flips its first and last bit (a single flip when
        # burst_len is 1).
        bits[start] ^= 1
        if burst_len > 1:
            bits[start + burst_len - 1] ^= 1
        assert not CRC16_CCITT.check_bits(bits, crc)

    def test_check_method(self):
        assert CRC16_IBM.check(b"123456789", 0xBB3D)
        assert not CRC16_IBM.check(b"123456789", 0xBB3E)


class TestCustomPolynomial:
    def test_custom_instance(self):
        crc = Crc16(poly=0x1021, init=0x0000, reflect=False, name="xmodem")
        assert crc.compute(b"123456789") == 0x31C3  # CRC-16/XMODEM check value

    def test_repr_contains_name(self):
        assert "xmodem" in repr(Crc16(poly=0x1021, init=0, reflect=False, name="xmodem"))
