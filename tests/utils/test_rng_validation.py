"""Unit tests for repro.utils.rng and repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.rng import child_rngs, make_rng, spawn_seed
from repro.utils.validation import ensure_binary_array, ensure_in_range, ensure_positive


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert make_rng(42).integers(0, 1000) == make_rng(42).integers(0, 1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestChildRngs:
    def test_count(self):
        assert len(child_rngs(1, 5)) == 5

    def test_children_differ(self):
        a, b = child_rngs(7, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_deterministic_from_seed(self):
        a1, a2 = child_rngs(3, 2)
        b1, b2 = child_rngs(3, 2)
        assert a1.integers(0, 10**9) == b1.integers(0, 10**9)
        assert a2.integers(0, 10**9) == b2.integers(0, 10**9)

    def test_from_generator(self):
        kids = child_rngs(np.random.default_rng(0), 3)
        assert len(kids) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            child_rngs(0, -1)


class TestSpawnSeed:
    def test_range(self):
        seed = spawn_seed(np.random.default_rng(0))
        assert 0 <= seed < 2**63


class TestValidation:
    def test_ensure_positive_accepts(self):
        assert ensure_positive(3, "x") == 3

    def test_ensure_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            ensure_positive(0, "x")

    def test_ensure_in_range(self):
        assert ensure_in_range(5, "y", 0, 10) == 5
        with pytest.raises(ValueError, match="y"):
            ensure_in_range(11, "y", 0, 10)

    def test_ensure_in_range_exclusive(self):
        with pytest.raises(ValueError):
            ensure_in_range(0, "z", 0, 1, inclusive=False)

    def test_ensure_binary(self):
        out = ensure_binary_array([0, 1, 1], "bits")
        assert out.dtype == np.uint8
        with pytest.raises(ValueError, match="bits"):
            ensure_binary_array([0, 2], "bits")
