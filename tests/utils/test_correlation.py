"""Unit tests for repro.utils.correlation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.correlation import (
    best_alignment,
    correlation_peaks,
    normalized_correlation,
    sliding_correlation,
)


class TestNormalizedCorrelation:
    def test_identical_is_one(self):
        x = np.array([1.0, -1.0, 1.0, 1.0])
        assert normalized_correlation(x, x) == pytest.approx(1.0)

    def test_phase_invariant(self):
        x = np.array([1.0, -1.0, 1.0, 1.0])
        rotated = x * np.exp(1j * 0.7)
        assert normalized_correlation(rotated, x) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        a = np.array([1.0, 1.0, -1.0, -1.0])
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert normalized_correlation(a, b) == pytest.approx(0.0)

    def test_zero_signal(self):
        assert normalized_correlation(np.zeros(4), np.ones(4)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_correlation(np.ones(3), np.ones(4))

    @given(st.integers(2, 32))
    def test_bounded_by_one(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        t = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert 0.0 <= normalized_correlation(x, t) <= 1.0 + 1e-12


class TestSlidingCorrelation:
    def test_peak_at_embedding_offset(self):
        rng = np.random.default_rng(3)
        template = np.sign(rng.normal(size=32))
        signal = np.concatenate([np.zeros(17), template, np.zeros(11)])
        signal = signal + 0.01 * rng.normal(size=signal.size)
        corr = sliding_correlation(signal, template)
        assert int(np.argmax(corr)) == 17

    def test_output_length(self):
        corr = sliding_correlation(np.zeros(100), np.ones(30))
        assert corr.size == 71

    def test_too_short_signal(self):
        assert sliding_correlation(np.zeros(3), np.ones(5)).size == 0

    def test_empty_template_rejected(self):
        with pytest.raises(ValueError):
            sliding_correlation(np.zeros(5), np.zeros(0))

    def test_unnormalized_scales_with_amplitude(self):
        template = np.ones(8)
        weak = sliding_correlation(0.1 * np.ones(16), template, normalize=False)
        strong = sliding_correlation(10.0 * np.ones(16), template, normalize=False)
        assert strong.max() > 50 * weak.max()

    def test_normalized_is_scale_invariant(self):
        rng = np.random.default_rng(0)
        template = np.sign(rng.normal(size=16))
        signal = np.concatenate([rng.normal(size=8), template, rng.normal(size=8)])
        a = sliding_correlation(signal, template)
        b = sliding_correlation(1000.0 * signal, template)
        assert np.allclose(a, b)


class TestCorrelationPeaks:
    def test_finds_isolated_peaks(self):
        corr = np.zeros(50)
        corr[10] = 1.0
        corr[40] = 0.8
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=5)
        assert peaks.tolist() == [10, 40]

    def test_suppresses_nearby(self):
        corr = np.zeros(50)
        corr[10] = 1.0
        corr[12] = 0.9
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=5)
        assert peaks.tolist() == [10]

    def test_threshold_filters(self):
        corr = np.array([0.1, 0.2, 0.3])
        assert correlation_peaks(corr, threshold=0.5).size == 0

    def test_empty_input(self):
        assert correlation_peaks(np.zeros(0), 0.5).size == 0


class TestBestAlignment:
    def test_returns_offset_and_score(self):
        rng = np.random.default_rng(9)
        template = np.sign(rng.normal(size=24))
        signal = np.concatenate([0.05 * rng.normal(size=13), template])
        offset, score = best_alignment(signal, template)
        assert offset == 13
        assert score > 0.9

    def test_degenerate(self):
        offset, score = best_alignment(np.zeros(3), np.ones(8))
        assert (offset, score) == (0, 0.0)
