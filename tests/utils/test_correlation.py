"""Unit tests for repro.utils.correlation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.correlation import (
    DENOM_FLOOR,
    best_alignment,
    correlation_peaks,
    guard_denominator,
    normalized_correlation,
    sliding_correlation,
)


class TestGuardDenominator:
    def test_scalar_zero_is_floored(self):
        assert guard_denominator(0.0) == DENOM_FLOOR

    def test_negative_cancellation_residue_is_floored(self):
        """Cumsum cancellation can leave tiny negative energies; the
        guard must repair them before sqrt turns them into NaN."""
        assert guard_denominator(-1e-18) == DENOM_FLOOR

    def test_real_denominators_pass_through(self):
        energy = np.array([1e-30, 1e-3, 2.5])
        out = guard_denominator(energy)
        assert np.array_equal(out, energy)

    def test_floor_is_below_every_normal_float(self):
        assert 0.0 < DENOM_FLOOR < 1e-300


class TestNormalizedCorrelation:
    def test_identical_is_one(self):
        x = np.array([1.0, -1.0, 1.0, 1.0])
        assert normalized_correlation(x, x) == pytest.approx(1.0)

    def test_phase_invariant(self):
        x = np.array([1.0, -1.0, 1.0, 1.0])
        rotated = x * np.exp(1j * 0.7)
        assert normalized_correlation(rotated, x) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        a = np.array([1.0, 1.0, -1.0, -1.0])
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert normalized_correlation(a, b) == pytest.approx(0.0)

    def test_zero_signal(self):
        assert normalized_correlation(np.zeros(4), np.ones(4)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_correlation(np.ones(3), np.ones(4))

    @given(st.integers(2, 32))
    def test_bounded_by_one(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        t = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert 0.0 <= normalized_correlation(x, t) <= 1.0 + 1e-12


class TestSlidingCorrelation:
    def test_peak_at_embedding_offset(self):
        rng = np.random.default_rng(3)
        template = np.sign(rng.normal(size=32))
        signal = np.concatenate([np.zeros(17), template, np.zeros(11)])
        signal = signal + 0.01 * rng.normal(size=signal.size)
        corr = sliding_correlation(signal, template)
        assert int(np.argmax(corr)) == 17

    def test_output_length(self):
        corr = sliding_correlation(np.zeros(100), np.ones(30))
        assert corr.size == 71

    def test_too_short_signal(self):
        assert sliding_correlation(np.zeros(3), np.ones(5)).size == 0

    def test_empty_template_rejected(self):
        with pytest.raises(ValueError):
            sliding_correlation(np.zeros(5), np.zeros(0))

    def test_unnormalized_scales_with_amplitude(self):
        template = np.ones(8)
        weak = sliding_correlation(0.1 * np.ones(16), template, normalize=False)
        strong = sliding_correlation(10.0 * np.ones(16), template, normalize=False)
        assert strong.max() > 50 * weak.max()

    def test_normalized_is_scale_invariant(self):
        rng = np.random.default_rng(0)
        template = np.sign(rng.normal(size=16))
        signal = np.concatenate([rng.normal(size=8), template, rng.normal(size=8)])
        a = sliding_correlation(signal, template)
        b = sliding_correlation(1000.0 * signal, template)
        assert np.allclose(a, b)

    def test_zero_energy_windows_score_zero(self):
        """Silent stretches normalise to exactly 0 -- never NaN/inf."""
        template = np.sign(np.random.default_rng(1).normal(size=8))
        signal = np.concatenate([np.zeros(20), template, np.zeros(20)])
        corr = sliding_correlation(signal, template)
        assert np.all(np.isfinite(corr))
        assert corr[0] == 0.0 and corr[-1] == 0.0
        assert corr[20] == pytest.approx(1.0)

    def test_near_zero_energy_window_regression(self):
        """Windows of denormal-scale noise stay finite and bounded.

        Regression for the old ad-hoc ``1e-30`` clamp: an amplitude of
        1e-80 gives window energies ~1e-160 -- far below the old clamp,
        which would have crushed the normalisation and reported ~0 for
        a perfect template match.  The scale-free guard normalises it
        like any other window.
        """
        rng = np.random.default_rng(2)
        template = np.sign(rng.normal(size=16))
        signal = 1e-80 * np.concatenate(
            [rng.normal(size=8), template, rng.normal(size=8)]
        )
        corr = sliding_correlation(signal, template)
        assert np.all(np.isfinite(corr))
        assert np.all(corr <= 1.0 + 1e-9)
        assert int(np.argmax(corr)) == 8
        assert corr[8] == pytest.approx(1.0, abs=1e-6)

    def test_all_zero_signal_normalized(self):
        corr = sliding_correlation(np.zeros(64), np.ones(16))
        assert np.array_equal(corr, np.zeros(49))


class TestCorrelationPeaks:
    def test_finds_isolated_peaks(self):
        corr = np.zeros(50)
        corr[10] = 1.0
        corr[40] = 0.8
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=5)
        assert peaks.tolist() == [10, 40]

    def test_suppresses_nearby(self):
        corr = np.zeros(50)
        corr[10] = 1.0
        corr[12] = 0.9
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=5)
        assert peaks.tolist() == [10]

    def test_threshold_filters(self):
        corr = np.array([0.1, 0.2, 0.3])
        assert correlation_peaks(corr, threshold=0.5).size == 0

    def test_empty_input(self):
        assert correlation_peaks(np.zeros(0), 0.5).size == 0

    def test_tied_peaks_resolve_to_earliest_deterministically(self):
        """Equal-height peaks inside one suppression radius must keep
        the *earliest* index -- every platform, every numpy build."""
        corr = np.zeros(50)
        corr[12] = 0.9
        corr[10] = 0.9  # deliberate tie, later assignment earlier index
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=5)
        assert peaks.tolist() == [10]

    def test_tied_plateau_keeps_spaced_earliest_peaks(self):
        corr = np.zeros(40)
        corr[10:20] = 0.8  # 10-sample plateau of exact ties
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=4)
        assert peaks.tolist() == [10, 14, 18]

    def test_tie_with_distinct_heights_unaffected(self):
        corr = np.zeros(50)
        corr[10] = 0.7
        corr[12] = 0.9  # strictly higher: wins despite later index
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=5)
        assert peaks.tolist() == [12]

    def test_matches_greedy_reference_on_random_input(self):
        """The vectorised suppression is the same greedy NMS."""

        def greedy_reference(corr, threshold, min_spacing):
            candidates = np.flatnonzero(corr >= threshold)
            heights = corr[candidates]
            order = candidates[np.lexsort((candidates, -heights))]
            accepted = []
            for idx in order:
                if all(abs(int(idx) - a) >= min_spacing for a in accepted):
                    accepted.append(int(idx))
            return sorted(accepted)

        rng = np.random.default_rng(5)
        for _ in range(25):
            corr = rng.uniform(size=rng.integers(1, 200))
            # Quantise to force plenty of exact ties.
            corr = np.round(corr, 1)
            spacing = int(rng.integers(1, 12))
            got = correlation_peaks(corr, threshold=0.5, min_spacing=spacing)
            assert got.tolist() == greedy_reference(corr, 0.5, spacing)

    def test_large_plateau_is_fast_and_correct(self):
        """O(P log P) NMS on a pathological all-above-threshold input."""
        corr = np.full(20000, 0.9)
        peaks = correlation_peaks(corr, threshold=0.5, min_spacing=100)
        assert peaks.tolist() == list(range(0, 20000, 100))


class TestBestAlignment:
    def test_returns_offset_and_score(self):
        rng = np.random.default_rng(9)
        template = np.sign(rng.normal(size=24))
        signal = np.concatenate([0.05 * rng.normal(size=13), template])
        offset, score = best_alignment(signal, template)
        assert offset == 13
        assert score > 0.9

    def test_degenerate(self):
        offset, score = best_alignment(np.zeros(3), np.ones(8))
        assert (offset, score) == (0, 0.0)
