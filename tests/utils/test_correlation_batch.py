"""Unit tests for repro.utils.correlation_batch."""

import numpy as np
import pytest

from repro.tag.framing import FrameFormat
from repro.utils.correlation import sliding_correlation
from repro.utils.correlation_batch import (
    BACKEND_ENV,
    TemplateBank,
    clear_template_cache,
    corr_backend,
    sliding_correlation_batch,
    template_bank,
)


def _random_stack(rng, n_templates, m):
    return np.sign(rng.normal(size=(n_templates, m))) + 0.0


class TestBackendSelection:
    def test_default_is_fft(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert corr_backend() == "fft"

    def test_env_var_selects_direct(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "direct")
        assert corr_backend() == "direct"

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "direct")
        assert corr_backend("fft") == "fft"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "quantum")
        with pytest.raises(ValueError, match="quantum"):
            corr_backend()

    def test_case_and_whitespace_normalised(self):
        assert corr_backend(" FFT ") == "fft"


class TestSlidingCorrelationBatch:
    def test_direct_backend_matches_legacy_bitwise(self):
        rng = np.random.default_rng(0)
        sig = rng.normal(size=300) + 1j * rng.normal(size=300)
        templates = _random_stack(rng, 4, 32)
        batch = sliding_correlation_batch(sig, templates, backend="direct")
        for row, template in enumerate(templates):
            assert np.array_equal(batch[row], sliding_correlation(sig, template))

    @pytest.mark.parametrize("normalize", [True, False])
    @pytest.mark.parametrize("complex_signal", [False, True])
    def test_fft_matches_direct(self, normalize, complex_signal):
        rng = np.random.default_rng(1)
        sig = rng.normal(size=500)
        if complex_signal:
            sig = sig + 1j * rng.normal(size=500)
        templates = _random_stack(rng, 6, 64)
        direct = sliding_correlation_batch(sig, templates, normalize=normalize, backend="direct")
        fft = sliding_correlation_batch(sig, templates, normalize=normalize, backend="fft")
        scale = max(float(np.abs(direct).max()), 1e-12)
        assert np.abs(fft - direct).max() / scale < 1e-10

    def test_overlap_save_long_signal_matches_direct(self):
        rng = np.random.default_rng(2)
        n = (1 << 17) + 12345  # over the overlap-save threshold
        sig = rng.normal(size=n) + 1j * rng.normal(size=n)
        templates = _random_stack(rng, 2, 257)
        direct = sliding_correlation_batch(sig, templates, backend="direct")
        fft = sliding_correlation_batch(sig, templates, backend="fft")
        assert fft.shape == direct.shape
        assert np.abs(fft - direct).max() / float(direct.max()) < 1e-10

    def test_output_shape(self):
        out = sliding_correlation_batch(np.zeros(100), np.ones((3, 30)))
        assert out.shape == (3, 71)

    def test_short_signal_returns_empty(self):
        out = sliding_correlation_batch(np.zeros(5), np.ones((2, 8)))
        assert out.shape == (2, 0)

    def test_empty_templates_rejected(self):
        with pytest.raises(ValueError):
            sliding_correlation_batch(np.zeros(10), np.ones((2, 0)))

    def test_one_dim_templates_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            sliding_correlation_batch(np.zeros(10), np.ones(4))

    def test_zero_signal_scores_zero_not_nan(self):
        out = sliding_correlation_batch(np.zeros(64), np.ones((2, 8)))
        assert np.array_equal(out, np.zeros((2, 57)))

    def test_env_var_escape_hatch_applies(self, monkeypatch):
        rng = np.random.default_rng(3)
        sig = rng.normal(size=128)
        templates = _random_stack(rng, 2, 16)
        monkeypatch.setenv(BACKEND_ENV, "direct")
        via_env = sliding_correlation_batch(sig, templates)
        explicit = sliding_correlation_batch(sig, templates, backend="direct")
        assert np.array_equal(via_env, explicit)


class TestTemplateBank:
    def setup_method(self):
        clear_template_cache()

    def test_rows_match_per_user_construction(self):
        from repro.phy.modulation import spread_bits, upsample_chips
        from repro.utils.bits import bits_to_bipolar

        rng = np.random.default_rng(4)
        fmt = FrameFormat()
        codes = {i: (rng.integers(0, 2, size=32)).astype(np.uint8) for i in range(3)}
        bank = template_bank(fmt, codes, samples_per_chip=2)
        assert isinstance(bank, TemplateBank)
        assert bank.n_users == 3
        for uid, code in codes.items():
            expected = upsample_chips(bits_to_bipolar(spread_bits(fmt.preamble, code)), 2)
            assert np.array_equal(bank.template(uid), expected)
            assert bank.template_samples == expected.size

    def test_cache_returns_same_bank_for_equal_inputs(self):
        fmt = FrameFormat()
        codes_a = {0: np.array([0, 1, 1, 0], dtype=np.uint8)}
        codes_b = {0: np.array([0, 1, 1, 0], dtype=np.uint8)}  # equal, distinct object
        bank_a = template_bank(fmt, codes_a, samples_per_chip=1)
        bank_b = template_bank(FrameFormat(), codes_b, samples_per_chip=1)
        assert bank_a is bank_b

    def test_cache_distinguishes_oversampling(self):
        fmt = FrameFormat()
        codes = {0: np.array([0, 1, 1, 0], dtype=np.uint8)}
        assert template_bank(fmt, codes, 1) is not template_bank(fmt, codes, 2)

    def test_ragged_codes_rejected(self):
        codes = {
            0: np.array([0, 1], dtype=np.uint8),
            1: np.array([0, 1, 1], dtype=np.uint8),
        }
        with pytest.raises(ValueError, match="one length"):
            template_bank(FrameFormat(), codes, 1)

    def test_empty_codes_rejected(self):
        with pytest.raises(ValueError):
            template_bank(FrameFormat(), {}, 1)

    def test_clear_reports_count(self):
        template_bank(FrameFormat(), {0: np.array([0, 1], dtype=np.uint8)}, 1)
        assert clear_template_cache() >= 1
        assert clear_template_cache() == 0

    def test_correlate_matches_kernel(self):
        rng = np.random.default_rng(5)
        fmt = FrameFormat()
        codes = {i: rng.integers(0, 2, size=16).astype(np.uint8) for i in range(2)}
        bank = template_bank(fmt, codes, samples_per_chip=1)
        sig = rng.normal(size=bank.template_samples * 3)
        assert np.array_equal(
            bank.correlate(sig, backend="direct"),
            sliding_correlation_batch(sig, bank.matrix, backend="direct"),
        )
