"""Unit tests for repro.utils.db."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.db import (
    add_powers_dbm,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    power_ratio_db,
    watts_to_dbm,
)


class TestConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db_roundtrip(self):
        for db in (-30.0, -3.0, 0.0, 7.5, 40.0):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_dbm_watts(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert dbm_to_watts(30.0) == pytest.approx(1.0)
        assert watts_to_dbm(1e-3) == pytest.approx(0.0)

    def test_zero_linear_clamped(self):
        assert linear_to_db(0.0) == -300.0
        assert np.isfinite(linear_to_db(-1.0))

    def test_array_inputs(self):
        arr = np.array([1.0, 10.0, 100.0])
        out = linear_to_db(arr)
        assert np.allclose(out, [0.0, 10.0, 20.0])

    @given(st.floats(min_value=-100, max_value=100))
    def test_roundtrip_property(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


class TestPowerRatio:
    def test_equal_powers(self):
        assert power_ratio_db(5.0, 5.0) == pytest.approx(0.0)

    def test_ten_times(self):
        assert power_ratio_db(10.0, 1.0) == pytest.approx(10.0)


class TestAddPowers:
    def test_two_equal_sources_add_3db(self):
        assert add_powers_dbm(-60.0, -60.0) == pytest.approx(-57.0, abs=0.02)

    def test_dominant_source_wins(self):
        total = add_powers_dbm(-40.0, -90.0)
        assert total == pytest.approx(-40.0, abs=0.01)

    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            add_powers_dbm()
