"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    as_bit_array,
    bipolar_to_bits,
    bits_to_bipolar,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    pack_bits,
    random_bits,
    unpack_bits,
)


class TestAsBitArray:
    def test_from_string(self):
        assert as_bit_array("1011").tolist() == [1, 0, 1, 1]

    def test_from_list(self):
        assert as_bit_array([0, 1, 0]).dtype == np.uint8

    def test_rejects_non_binary_string(self):
        with pytest.raises(ValueError):
            as_bit_array("10 2")

    def test_rejects_non_binary_values(self):
        with pytest.raises(ValueError):
            as_bit_array([0, 1, 2])

    def test_empty(self):
        assert as_bit_array("").size == 0

    def test_flattens(self):
        assert as_bit_array(np.array([[1, 0], [0, 1]])).shape == (4,)


class TestBytesBits:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert bytes_to_bits(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_lsb_first(self):
        assert bytes_to_bits(b"\x80", msb_first=False).tolist() == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_lsb_roundtrip(self):
        data = b"\x12\x34\xab"
        assert bits_to_bytes(bytes_to_bits(data, msb_first=False), msb_first=False) == data

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    @given(st.binary(max_size=64))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestIntBits:
    def test_basic(self):
        assert int_to_bits(5, 4).tolist() == [0, 1, 0, 1]

    def test_roundtrip(self):
        for v in (0, 1, 127, 255):
            assert bits_to_int(int_to_bits(v, 8)) == v

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 8)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip_property(self, v):
        assert bits_to_int(int_to_bits(v, 16)) == v


class TestPackUnpack:
    def test_pack(self):
        out = pack_bits([1, 0], "11", np.array([0], dtype=np.uint8))
        assert out.tolist() == [1, 0, 1, 1, 0]

    def test_pack_empty(self):
        assert pack_bits().size == 0

    def test_unpack_fields(self):
        a, b, c = unpack_bits(as_bit_array("10110"), 2, 2, 1)
        assert a.tolist() == [1, 0]
        assert b.tolist() == [1, 1]
        assert c.tolist() == [0]

    def test_unpack_rest(self):
        a, rest = unpack_bits(as_bit_array("10110"), 2, -1)
        assert rest.tolist() == [1, 1, 0]

    def test_unpack_too_short(self):
        with pytest.raises(ValueError):
            unpack_bits(as_bit_array("10"), 3)

    def test_rest_only_last(self):
        with pytest.raises(ValueError):
            unpack_bits(as_bit_array("1010"), -1, 2)


class TestHamming:
    def test_zero_distance(self):
        assert hamming_distance("1010", "1010") == 0

    def test_all_differ(self):
        assert hamming_distance("1111", "0000") == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance("10", "100")


class TestBipolar:
    def test_mapping(self):
        assert bits_to_bipolar([1, 0, 1]).tolist() == [1.0, -1.0, 1.0]

    def test_roundtrip(self):
        bits = random_bits(100, np.random.default_rng(0))
        assert np.array_equal(bipolar_to_bits(bits_to_bipolar(bits)), bits)

    @given(st.lists(st.integers(0, 1), max_size=64))
    def test_roundtrip_property(self, bits):
        arr = as_bit_array(bits)
        assert np.array_equal(bipolar_to_bits(bits_to_bipolar(arr)), arr)


class TestRandomBits:
    def test_length(self):
        assert random_bits(17).size == 17

    def test_deterministic_with_seed(self):
        a = random_bits(50, np.random.default_rng(1))
        b = random_bits(50, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_bits(-1)
