"""Tests for runtime array contracts (repro.utils.contracts)."""

import numpy as np
import pytest

from repro.utils.contracts import (
    ArrayContractError,
    ArraySpec,
    array_contract,
    contracts_enabled,
    enable_contracts,
)


@pytest.fixture
def checked():
    """Enable runtime contract checking for the duration of one test."""
    previous = enable_contracts(True)
    yield
    enable_contracts(previous)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------


def test_parse_dims_and_dtype():
    spec = ArraySpec.parse("(n_tags, n_chips) complex64")
    assert spec.dims == ("n_tags", "n_chips")
    assert spec.dtype == "complex64"


def test_parse_scalar_and_bare_dtype():
    assert ArraySpec.parse("() float64").dims == ()
    bare = ArraySpec.parse("uint8")
    assert bare.dims is None
    assert bare.dtype == "uint8"


def test_parse_any_dtype_and_integer_dims():
    spec = ArraySpec.parse("(3, n) any")
    assert spec.dims == ("3", "n")
    assert spec.dtype == "any"


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        ArraySpec.parse("(n] complex128")
    with pytest.raises(TypeError):
        ArraySpec.parse("(n) notadtype")


# ----------------------------------------------------------------------
# Decorator wiring
# ----------------------------------------------------------------------


def test_unknown_parameter_rejected_at_decoration_time():
    with pytest.raises(ValueError, match="nope"):

        @array_contract(nope="(n) float64")
        def f(x):
            return x


def test_contract_metadata_attached_for_lnt004():
    @array_contract(x="(n) complex64", returns="(n) complex128")
    def f(x):
        return np.asarray(x)

    meta = f.__array_contract__
    assert meta["params"]["x"].dtype == "complex64"
    assert meta["returns"].dtype == "complex128"


def test_disabled_by_default_is_a_no_op():
    assert not contracts_enabled()

    @array_contract(x="(n) complex128")
    def f(x):
        return x

    # Wrong dtype passes silently while checking is off.
    assert f(np.zeros(3, dtype=np.float32)) is not None


# ----------------------------------------------------------------------
# Runtime checking
# ----------------------------------------------------------------------


def test_dtype_violation_raises(checked):
    @array_contract(x="(n) complex128")
    def f(x):
        return x

    f(np.zeros(4, dtype=np.complex128))
    with pytest.raises(ArrayContractError, match="dtype"):
        f(np.zeros(4, dtype=np.complex64))


def test_rank_violation_raises(checked):
    @array_contract(x="(n) float64")
    def f(x):
        return x

    with pytest.raises(ArrayContractError, match="rank"):
        f(np.zeros((2, 2)))


def test_non_ndarray_raises(checked):
    @array_contract(x="(n) float64")
    def f(x):
        return x

    with pytest.raises(ArrayContractError, match="ndarray"):
        f([1.0, 2.0])


def test_none_arguments_are_skipped(checked):
    @array_contract(x="(n) float64")
    def f(x=None):
        return x

    assert f() is None
    assert f(None) is None


def test_dim_symbols_cross_bind_between_arguments(checked):
    @array_contract(x="(n) float64", y="(n) float64")
    def f(x, y):
        return x + y

    f(np.zeros(3), np.zeros(3))
    with pytest.raises(ArrayContractError, match="n="):
        f(np.zeros(3), np.zeros(4))


def test_integer_dim_literal_enforced(checked):
    @array_contract(x="(2, n) float64")
    def f(x):
        return x

    f(np.zeros((2, 5)))
    with pytest.raises(ArrayContractError):
        f(np.zeros((3, 5)))


def test_return_contract_checked_and_shares_bindings(checked):
    @array_contract(x="(n) float64", returns="(n) float64")
    def truncating(x):
        return x[:-1]

    with pytest.raises(ArrayContractError, match="return value"):
        truncating(np.zeros(4))


def test_enable_contracts_returns_previous_state():
    previous = enable_contracts(True)
    try:
        assert contracts_enabled()
        assert enable_contracts(False) is True
        assert not contracts_enabled()
    finally:
        enable_contracts(previous)


def test_noise_model_sample_passes_under_contracts(checked):
    from repro.channel.noise import NoiseModel

    noise = NoiseModel()
    out = noise.sample(64, rng=np.random.default_rng(0))
    assert out.dtype == np.complex128
    assert out.shape == (64,)
