"""Unit tests for repro.analysis.calibration."""

import pytest

from repro.analysis.calibration import ReferenceCondition, calibrate_noise_floor, waterfall
from repro.sim.network import CALIBRATED_EXTRA_NOISE_DB


class TestReferenceCondition:
    def test_quiet_floor_is_clean(self):
        cond = ReferenceCondition(rounds=10)
        assert cond.measure_fer(20.0) < 0.2

    def test_loud_floor_is_dead(self):
        cond = ReferenceCondition(rounds=10)
        assert cond.measure_fer(75.0) > 0.8

    def test_deterministic(self):
        cond = ReferenceCondition(rounds=8)
        assert cond.measure_fer(50.0) == cond.measure_fer(50.0)


class TestCalibration:
    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_noise_floor(target_fer=0.0)
        with pytest.raises(ValueError):
            calibrate_noise_floor(lo_db=60, hi_db=50)

    def test_finds_a_crossing(self):
        cond = ReferenceCondition(rounds=12)
        level, fer = calibrate_noise_floor(
            target_fer=0.25, condition=cond, lo_db=35.0, hi_db=70.0,
            tolerance_db=2.0, max_iterations=6,
        )
        assert 35.0 <= level <= 70.0
        # The crossing is noisy; just require the found point to sit in
        # the transition region rather than on a flat tail.
        assert 0.0 < fer < 1.0

    def test_shipped_constant_is_plausible(self):
        """The committed CALIBRATED_EXTRA_NOISE_DB must still place the
        reference condition in the low-FER regime (the calibration
        contract of docs/physics.md)."""
        cond = ReferenceCondition(rounds=20)
        fer = cond.measure_fer(CALIBRATED_EXTRA_NOISE_DB)
        assert fer < 0.15, (
            f"reference FER {fer:.3f} at the shipped constant -- recalibrate"
        )

    def test_degenerate_bounds_returned(self):
        cond = ReferenceCondition(rounds=8)
        level, fer = calibrate_noise_floor(
            target_fer=0.9999, condition=cond, lo_db=20.0, hi_db=30.0
        )
        assert level == 30.0  # even the loud end is below target


class TestWaterfall:
    def test_monotone_overall(self):
        cond = ReferenceCondition(rounds=12)
        samples = waterfall([35.0, 55.0, 70.0], condition=cond)
        fers = [f for _, f in samples]
        assert fers[0] <= fers[-1]
        assert len(samples) == 3
