"""Unit tests for repro.analysis.report (tiny fidelity)."""

import pytest

from repro.analysis.report import ReportSection, generate_report
from repro.sim.experiments import fig12_working_conditions


def _tiny_sections():
    return [
        ReportSection(
            title="Fig. 12 (tiny)",
            paper_shape="clean >= WiFi ~ BT >> OFDM",
            runner=lambda rounds: fig12_working_conditions(rounds=rounds),
            rounds=6,
        )
    ]


class TestGenerateReport:
    def test_returns_markdown(self):
        text = generate_report(sections=_tiny_sections(), include_headline=False)
        assert text.startswith("# CBMA reproduction report")
        assert "## Fig. 12 (tiny)" in text
        assert "| condition |" in text
        assert "Paper shape" in text

    def test_writes_file(self, tmp_path):
        out = tmp_path / "report.md"
        generate_report(out, sections=_tiny_sections(), include_headline=False)
        assert out.read_text().startswith("# CBMA reproduction report")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_report(scale=0.0, sections=_tiny_sections(), include_headline=False)

    def test_sparklines_included(self):
        text = generate_report(sections=_tiny_sections(), include_headline=False)
        assert "`PRR`" in text
