"""Unit tests for repro.analysis.ascii_plots."""

import numpy as np
import pytest

from repro.analysis.ascii_plots import bar_chart, heatmap, line_plot, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_constant_series(self):
        s = sparkline([5, 5, 5])
        assert len(s) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s in "▄▅"


class TestBarChart:
    def test_rows(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0])
        lines = out.splitlines()
        assert len(lines) == 2
        assert "bb" in lines[1]

    def test_peak_is_longest(self):
        out = bar_chart(["x", "y"], [1.0, 4.0])
        bars = [line.count("█") for line in out.splitlines()]
        assert bars[1] > bars[0]

    def test_zero_value_no_bar(self):
        out = bar_chart(["z"], [0.0])
        assert "█" not in out

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        assert "ms" in bar_chart(["a"], [3.0], unit="ms")


class TestHeatmap:
    def test_shape(self):
        out = heatmap(np.arange(12).reshape(3, 4))
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(l) == 4 for l in lines)

    def test_extremes(self):
        out = heatmap(np.array([[0.0, 1.0]]))
        assert out[0] == " "
        assert out[-1] == "@"

    def test_flip(self):
        m = np.array([[0.0], [1.0]])
        flipped = heatmap(m, flip_rows=True)
        assert flipped.splitlines()[0] == "@"

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            heatmap(np.arange(3))


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        out = line_plot([0, 1, 2], {"a": [0, 1, 2], "b": [2, 1, 0]})
        assert "*" in out and "+" in out
        assert "a" in out.splitlines()[-1]

    def test_header_ranges(self):
        out = line_plot([0, 10], {"s": [5, 15]})
        assert "x: 0 .. 10" in out.splitlines()[0]

    def test_empty(self):
        assert line_plot([], {"s": []}) == ""
