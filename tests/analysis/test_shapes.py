"""Unit tests for repro.analysis.shapes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.shapes import (
    dominates,
    is_roughly_monotone,
    knee_index,
    ordering_holds,
    plateau_stats,
)


class TestRoughlyMonotone:
    def test_clean_increase(self):
        assert is_roughly_monotone([0.1, 0.2, 0.3])

    def test_clean_decrease(self):
        assert is_roughly_monotone([0.3, 0.2, 0.1], increasing=False)

    def test_noise_within_slack(self):
        assert is_roughly_monotone([0.1, 0.12, 0.09, 0.2], slack=0.05)

    def test_violation_beyond_slack(self):
        assert not is_roughly_monotone([0.1, 0.5, 0.1, 0.6], slack=0.05)

    def test_flat_counts_as_monotone(self):
        assert is_roughly_monotone([0.2, 0.2, 0.2])
        assert is_roughly_monotone([0.2, 0.2, 0.2], increasing=False)

    def test_endpoints_must_respect_direction(self):
        # Locally fine but globally decreasing.
        assert not is_roughly_monotone([0.5, 0.48, 0.46, 0.44], slack=0.05)

    def test_short_series(self):
        assert is_roughly_monotone([1.0])
        assert is_roughly_monotone([])

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=20))
    def test_sorted_always_passes(self, values):
        assert is_roughly_monotone(sorted(values), slack=0.0)


class TestDominates:
    def test_strict(self):
        assert dominates([0.1, 0.2], [0.3, 0.4])

    def test_with_slack(self):
        assert dominates([0.31, 0.2], [0.3, 0.4], slack=0.02)

    def test_fails(self):
        assert not dominates([0.5, 0.2], [0.3, 0.4])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates([0.1], [0.1, 0.2])


class TestKnee:
    def test_obvious_knee(self):
        values = [0.05, 0.05, 0.05, 0.05, 0.3, 0.6]
        assert knee_index(range(6), values) in (4, 5)
        assert knee_index(range(6), values, rise_fraction=0.25) == 4

    def test_no_rise(self):
        values = [0.1, 0.1, 0.1, 0.1]
        assert knee_index(range(4), values) == 4

    def test_early_rise(self):
        values = [0.05, 0.5, 0.9]
        assert knee_index(range(3), values) <= 1

    def test_too_short(self):
        with pytest.raises(ValueError):
            knee_index([0, 1], [0.1, 0.2])

    def test_rise_fraction_moves_knee(self):
        values = [0.0, 0.0, 0.0, 0.2, 0.5, 1.0]
        late = knee_index(range(6), values, rise_fraction=0.8)
        early = knee_index(range(6), values, rise_fraction=0.1)
        assert early <= late


class TestPlateauAndOrdering:
    def test_plateau_stats(self):
        mean, spread = plateau_stats([0.03, 0.05, 0.04])
        assert mean == pytest.approx(0.04)
        assert spread == pytest.approx(0.02)

    def test_plateau_empty(self):
        with pytest.raises(ValueError):
            plateau_stats([])

    def test_ordering_holds(self):
        best = [0.01, 0.02]
        mid = [0.05, 0.06]
        worst = [0.2, 0.3]
        assert ordering_holds([best, mid, worst])
        assert not ordering_holds([worst, mid, best])

    def test_ordering_median(self):
        a = [0.0, 0.0, 10.0]  # mean 3.3, median 0
        b = [0.1, 0.1, 0.1]
        assert ordering_holds([a, b], on="median")
        assert not ordering_holds([a, b], on="mean", slack=0.0)

    def test_ordering_bad_stat(self):
        with pytest.raises(ValueError):
            ordering_holds([[1.0]], on="max")
