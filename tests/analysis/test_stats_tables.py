"""Unit tests for repro.analysis."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import cdf_at, empirical_cdf, summarize, wilson_interval
from repro.analysis.tables import format_percent, render_series, render_table


class TestEmpiricalCdf:
    def test_basic(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probs.tolist() == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_empty(self):
        values, probs = empirical_cdf([])
        assert values.size == 0

    def test_cdf_at(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        assert cdf_at(samples, 0.25) == 0.5
        assert cdf_at(samples, 1.0) == 1.0
        assert cdf_at(samples, 0.0) == 0.0
        assert cdf_at([], 1.0) == 0.0

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_monotone_property(self, samples):
        _, probs = empirical_cdf(samples)
        assert np.all(np.diff(probs) >= 0)
        assert probs[-1] == pytest.approx(1.0)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0
        assert hi > 0.0

    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_narrows_with_more_trials(self):
        lo1, hi1 = wilson_interval(10, 20)
        lo2, hi2 = wilson_interval(1000, 2000)
        assert (hi2 - lo2) < (hi1 - lo1)


class TestSummarize:
    def test_values(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.median == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTables:
    def test_render_table_contains_cells(self):
        out = render_table(["a", "b"], [[1, "x"], [2, "y"]], title="T")
        assert "T" in out
        assert "a" in out and "x" in out and "2" in out

    def test_column_alignment(self):
        out = render_table(["col"], [["veryverylongcell"], ["s"]])
        lines = out.splitlines()
        assert len(set(len(l) for l in lines[1:])) >= 1  # renders without error

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        out = render_series("x", [1, 2], {"y1": [0.5, 0.25], "y2": [0.1, 0.2]})
        assert "0.5000" in out
        assert "y2" in out

    def test_render_series_ragged(self):
        out = render_series("x", [1, 2, 3], {"y": [0.1, 0.2]})
        assert out  # missing cells render empty, no crash

    def test_format_percent(self):
        assert format_percent(0.1234) == "12.34%"
        assert format_percent(0.5, digits=0) == "50%"
