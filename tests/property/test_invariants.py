"""Cross-module property-based invariants (hypothesis).

These tests pin the contracts the whole stack relies on, generated
over wide input spaces rather than hand-picked examples:

- spreading/despreading is exact for every registered code family;
- framing round-trips any payload and never silently accepts a
  corrupted body;
- the chip decoder inverts the tag pipeline on a clean channel for
  arbitrary payloads, codes, phases and integer offsets;
- Friis path loss is monotone and scales correctly;
- the metrics accumulator conserves counts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.channel.pathloss import LinkBudget
from repro.codes.registry import make_codes
from repro.phy.modulation import despread_reference, ook_baseband, spread_bits, upsample_chips
from repro.receiver.decoder import ChipDecoder
from repro.sim.metrics import MetricsAccumulator, RoundOutcome
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag
from repro.utils.bits import as_bit_array

FAMILIES = [("gold", 31), ("2nc", 32), ("walsh", 32), ("kasami", 63)]


class TestSpreadingInvariants:
    @pytest.mark.parametrize("family,length", FAMILIES)
    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=24))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_despread_recovers_any_bits(self, family, length, bits):
        code = make_codes(family, 3, length)[2]
        chips = spread_bits(bits, code)
        ref = despread_reference(code)
        blocks = chips.astype(np.float64).reshape(len(bits), code.size)
        decisions = (blocks @ ref > 0).astype(int)
        assert decisions.tolist() == list(bits)

    @pytest.mark.parametrize("family,length", FAMILIES)
    def test_zero_is_exact_negation(self, family, length):
        code = make_codes(family, 1, length)[0]
        one = spread_bits([1], code)
        zero = spread_bits([0], code)
        assert np.array_equal(one ^ zero, np.ones_like(one))


class TestFramingInvariants:
    @given(payload=st.binary(max_size=64), preamble=st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_payload_any_preamble(self, payload, preamble):
        fmt = FrameFormat.with_preamble_bits(preamble)
        assert fmt.parse(fmt.build(payload)).payload == payload

    @given(payload=st.binary(min_size=1, max_size=24), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_corruption_never_silently_accepted(self, payload, data):
        fmt = FrameFormat()
        bits = fmt.build(payload).copy()
        n_flips = data.draw(st.integers(1, 4))
        positions = data.draw(
            st.lists(
                st.integers(fmt.preamble_bits, bits.size - 1),
                min_size=n_flips, max_size=n_flips, unique=True,
            )
        )
        for p in positions:
            bits[p] ^= 1
        try:
            frame = fmt.parse(bits)
        except Exception:
            return
        assert frame.payload != payload or len(frame.payload) != len(payload)


class TestEndToEndCleanChannel:
    @given(
        payload=st.binary(min_size=1, max_size=20),
        phase=st.floats(min_value=0.0, max_value=6.28),
        offset_chips=st.integers(0, 12),
        family_idx=st.integers(0, len(FAMILIES) - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_decoder_inverts_tag_pipeline(self, payload, phase, offset_chips, family_idx):
        family, length = FAMILIES[family_idx]
        code = make_codes(family, 2, length)[1]
        fmt = FrameFormat()
        tag = Tag(0, code, fmt=fmt)
        spc = 2
        amp = np.exp(1j * phase)
        chips = tag.chip_stream(payload, spc)
        signal = ook_baseband(chips, amplitude=amp)
        lead = offset_chips * spc
        buf = np.concatenate([np.zeros(lead, dtype=complex), signal, np.zeros(16, dtype=complex)])
        decoder = ChipDecoder(code, fmt, samples_per_chip=spc)
        frame = decoder.decode_frame(buf, lead, channel=amp, user_id=0)
        assert frame.success
        assert frame.payload == payload


class TestPathLossInvariants:
    @given(
        d1=st.floats(min_value=0.1, max_value=10.0),
        d2=st.floats(min_value=0.1, max_value=10.0),
        dg=st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_power_positive_and_reciprocal_in_legs(self, d1, d2, dg):
        b = LinkBudget()
        p = b.received_power_w(d1, d2, dg)
        assert p > 0
        # Swapping the legs leaves eq. (1)'s product unchanged (G_t=G_r here or not,
        # so compare the distance-dependent part only): scale both by the same factor.
        assert b.received_power_w(2 * d1, d2, dg) == pytest.approx(p / 4, rel=1e-6)
        assert b.received_power_w(d1, 2 * d2, dg) == pytest.approx(p / 4, rel=1e-6)

    @given(dg=st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_delta_gamma_square_law(self, dg):
        b = LinkBudget()
        assert b.received_power_w(1, 1, dg) == pytest.approx(
            dg**2 * b.received_power_w(1, 1, 1.0), rel=1e-9
        )


class TestMetricsInvariants:
    @given(
        outcomes=st.lists(
            st.tuples(st.booleans(), st.booleans(), st.booleans()), max_size=50
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_conserved(self, outcomes):
        m = MetricsAccumulator()
        sent = 0
        correct = 0
        for transmitted, decoded, payload_ok in outcomes:
            ok = transmitted and decoded and payload_ok
            m.record(
                RoundOutcome(
                    tag_id=0,
                    transmitted=transmitted,
                    detected=decoded,
                    decoded=decoded,
                    payload_correct=ok,
                ),
                payload_bits=8,
            )
            sent += int(transmitted)
            correct += int(ok)
        assert m.frames_sent == sent
        assert m.frames_correct == correct
        assert 0.0 <= m.fer <= 1.0
        assert m.prr == pytest.approx(1.0 - m.fer)
