"""Property-based equivalence: batched FFT kernel vs. the direct loop.

The batched kernel (:mod:`repro.utils.correlation_batch`) promises to be
*numerically interchangeable* with the legacy per-template path -- same
scores to FFT rounding, same detections, same candidate alignments.
These properties pin that promise over generated input spaces instead
of hand-picked examples:

- raw kernel scores agree within 1e-9 for float64 and complex128
  signals, normalised and not, 1-10 stacked templates;
- the direct backend reproduces the legacy single-template
  ``sliding_correlation`` bit-for-bit;
- on synthesized collisions (1-10 tags, samples_per_chip in {1, 2, 4})
  :class:`UserDetector` reports identical user sets, identical offsets
  and identical candidate-alignment sets under either backend.
"""

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes import twonc_codes
from repro.receiver.user_detection import UserDetector
from repro.sim.collision import CollisionScenario, simulate_round
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag
from repro.utils.correlation import sliding_correlation
from repro.utils.correlation_batch import BACKEND_ENV, sliding_correlation_batch

SCORE_TOL = 1e-9


@contextmanager
def _forced_backend(name: str) -> Iterator[None]:
    old = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = old


def _collision(n_tags: int, samples_per_chip: int, seed: int):
    """A clean synthesized *n_tags*-collision round."""
    rng = np.random.default_rng(seed)
    fmt = FrameFormat()
    codes = twonc_codes(n_tags, 64)
    tags = [Tag(i, codes[i], fmt=fmt) for i in range(n_tags)]
    scenario = CollisionScenario(
        tags=tags,
        amplitudes=[1.0 + 0.0j] * n_tags,
        samples_per_chip=samples_per_chip,
    )
    payloads = {
        i: rng.integers(0, 256, size=2).astype(np.uint8).tobytes() for i in range(n_tags)
    }
    iq, _truth = simulate_round(scenario, payloads, rng=rng)
    return np.asarray(iq), {i: codes[i] for i in range(n_tags)}, fmt


class TestKernelEquivalence:
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_templates=st.integers(1, 10),
        normalize=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_fft_scores_match_direct(self, dtype, seed, n_templates, normalize):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(8, 96))
        n = int(rng.integers(m, 2048))
        signal = rng.normal(size=n)
        if dtype is np.complex128:
            signal = signal + 1j * rng.normal(size=n)
        assert np.asarray(signal).dtype == dtype
        templates = np.sign(rng.normal(size=(n_templates, m))) + 0.0
        direct = sliding_correlation_batch(signal, templates, normalize=normalize, backend="direct")
        fft = sliding_correlation_batch(signal, templates, normalize=normalize, backend="fft")
        assert fft.shape == direct.shape
        if normalize:
            # Normalised scores live in [0, ~1]: absolute tolerance.
            assert float(np.abs(fft - direct).max()) < SCORE_TOL
        else:
            scale = max(float(np.abs(direct).max()), 1.0)
            assert float(np.abs(fft - direct).max()) / scale < SCORE_TOL

    @given(seed=st.integers(0, 2**32 - 1), n_templates=st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_direct_backend_is_bitwise_legacy(self, seed, n_templates):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(4, 64))
        n = int(rng.integers(m, 1024))
        signal = rng.normal(size=n) + 1j * rng.normal(size=n)
        templates = np.sign(rng.normal(size=(n_templates, m))) + 0.0
        batch = sliding_correlation_batch(signal, templates, backend="direct")
        for row, template in enumerate(templates):
            assert np.array_equal(batch[row], sliding_correlation(signal, template))

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_argmax_offsets_agree(self, seed):
        """The peak alignment of every row is the same under either
        backend (a 1e-9 score agreement is useless if the *offset*
        moved)."""
        rng = np.random.default_rng(seed)
        m = 32
        templates = np.sign(rng.normal(size=(5, m))) + 0.0
        # Embed each template in its own 300-sample stratum: distinct
        # offsets alone allow plants to overlap and corrupt each other,
        # which would move a row's global peak off its planted copy.
        signal = 0.05 * rng.normal(size=1500)
        offsets = rng.permutation(5) * 300 + rng.integers(0, 300 - m, size=5)
        for row, k in enumerate(offsets):
            signal[k : k + m] += templates[row]
        direct = sliding_correlation_batch(signal, templates, backend="direct")
        fft = sliding_correlation_batch(signal, templates, backend="fft")
        assert np.array_equal(np.argmax(direct, axis=1), np.argmax(fft, axis=1))
        assert np.array_equal(np.argmax(direct, axis=1), np.asarray(offsets))


class TestDetectorEquivalence:
    @pytest.mark.parametrize("samples_per_chip", [1, 2, 4])
    @given(seed=st.integers(0, 10_000), n_tags=st.integers(1, 10))
    @settings(max_examples=6, deadline=None)
    def test_detections_identical_across_backends(self, samples_per_chip, seed, n_tags):
        iq, code_map, fmt = _collision(n_tags, samples_per_chip, seed)
        detector = UserDetector(code_map, fmt, samples_per_chip=samples_per_chip)

        rows_direct = dict(detector.correlation_rows(iq, backend="direct"))
        rows_fft = dict(detector.correlation_rows(iq, backend="fft"))
        assert rows_direct.keys() == rows_fft.keys() == code_map.keys()
        for uid in rows_direct:
            assert float(np.abs(rows_direct[uid] - rows_fft[uid]).max()) < SCORE_TOL

        with _forced_backend("direct"):
            by_direct = {d.user_id: d for d in detector.detect(iq)}
        with _forced_backend("fft"):
            by_fft = {d.user_id: d for d in detector.detect(iq)}
        assert by_direct.keys() == by_fft.keys()
        for uid, a in by_direct.items():
            b = by_fft[uid]
            assert a.offset == b.offset
            assert a.score == pytest.approx(b.score, abs=SCORE_TOL)
            # Candidate alignment sets are identical, in order.
            assert [c[0] for c in a.candidates] == [c[0] for c in b.candidates]
            for (_, sa, ha), (_, sb, hb) in zip(a.candidates, b.candidates):
                assert sa == pytest.approx(sb, abs=SCORE_TOL)
                assert ha == pytest.approx(hb, abs=SCORE_TOL)
