"""Public-API integrity: every module imports and every __all__ resolves."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")  # importing it runs the CLI
)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_dunder_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_present():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
