"""Cross-session batched gating: bit-identity of the stacked kernels.

``sliding_correlation_many`` must equal per-row
``sliding_correlation_batch`` to the last bit (both backends), and
``StreamingReceiver.windows_are_live`` must agree with the scalar
``window_is_live`` on every window -- that identity is what makes the
farm's co-scheduled gate an optimisation rather than a behaviour
change.
"""

import numpy as np
import pytest

from repro.receiver.streaming import StreamingReceiver
from repro.utils.correlation_batch import (
    TemplateBank,
    sliding_correlation_batch,
    sliding_correlation_many,
)


def _stack(rng, n_signals, n, complex_signals=True):
    x = rng.normal(size=(n_signals, n))
    if complex_signals:
        x = x + 1j * rng.normal(size=(n_signals, n))
    return x


class TestStackedKernel:
    @pytest.mark.parametrize("backend", ["fft", "direct"])
    @pytest.mark.parametrize("complex_signals", [True, False])
    def test_matches_per_row_batch(self, backend, complex_signals):
        rng = np.random.default_rng(5)
        signals = _stack(rng, 3, 200, complex_signals)
        templates = rng.normal(size=(4, 24))
        many = sliding_correlation_many(signals, templates, backend=backend)
        rows = np.stack(
            [
                sliding_correlation_batch(row, templates, backend=backend)
                for row in signals
            ]
        )
        assert many.shape == (3, 4, 200 - 24 + 1)
        np.testing.assert_array_equal(many, rows)

    @pytest.mark.parametrize("backend", ["fft", "direct"])
    def test_unnormalized_matches_per_row(self, backend):
        rng = np.random.default_rng(6)
        signals = _stack(rng, 2, 120)
        templates = rng.normal(size=(3, 16))
        many = sliding_correlation_many(
            signals, templates, normalize=False, backend=backend
        )
        rows = np.stack(
            [
                sliding_correlation_batch(
                    row, templates, normalize=False, backend=backend
                )
                for row in signals
            ]
        )
        np.testing.assert_array_equal(many, rows)

    def test_short_signals_empty_lag_axis(self):
        signals = np.zeros((2, 10), dtype=np.complex128)
        templates = np.ones((3, 24))
        out = sliding_correlation_many(signals, templates)
        assert out.shape == (2, 3, 0)

    def test_empty_templates_rejected(self):
        with pytest.raises(ValueError):
            sliding_correlation_many(np.zeros((1, 8)), np.zeros((2, 0)))

    def test_requires_2d_signals(self):
        with pytest.raises(ValueError):
            sliding_correlation_many(np.zeros(16), np.ones((2, 4)))

    def test_bank_correlate_many(self):
        rng = np.random.default_rng(7)
        templates = rng.normal(size=(4, 20))
        bank = TemplateBank((0, 1, 2, 3), templates, samples_per_chip=1)
        windows = _stack(rng, 3, 90)
        np.testing.assert_array_equal(
            bank.correlate_many(windows),
            sliding_correlation_many(windows, bank.matrix),
        )


class TestBatchedGate:
    @pytest.fixture(scope="class")
    def stream(self, net_config):
        return StreamingReceiver.from_config(net_config)

    def test_matches_scalar_gate(self, stream, soak_capture):
        buffer, _chunks, _chunk = soak_capture
        w = stream.window_samples
        windows = np.stack([buffer[i * w : (i + 1) * w] for i in range(12)])
        batched = stream.windows_are_live(windows)
        scalar = np.array([stream.window_is_live(win) for win in windows])
        np.testing.assert_array_equal(batched, scalar)
        # The capture is busy enough that both branches are exercised.
        assert batched.any() and not batched.all()

    def test_empty_stack(self, stream):
        out = stream.windows_are_live(
            np.zeros((0, stream.window_samples), dtype=np.complex128)
        )
        assert out.shape == (0,)
        assert out.dtype == np.bool_

    def test_rejects_1d(self, stream):
        with pytest.raises(ValueError):
            stream.windows_are_live(np.zeros(stream.window_samples))
