"""The farm's core contract: byte-identical to the sequential run.

Every test compares a :class:`DecodeFarm` against the oracle in
``conftest.run_sequential`` -- the same chunks through a plain
:class:`SessionSupervisor`.  Frames (``StreamFrame`` streams in
emission order) and final stats dicts must be *equal*, not similar:
the farm is a scheduler, never a decoder variant.
"""

import pytest

from repro.farm import DecodeFarm, FarmConfig
from tests.farm.conftest import run_farm, run_sequential

N_SESSIONS = 3


@pytest.fixture(scope="module")
def oracle(net_config, soak_capture):
    _buffer, chunks, _chunk = soak_capture
    out = run_sequential(net_config, chunks, N_SESSIONS)
    # The stimulus must actually decode something or equality is vacuous.
    assert any(frames for frames, _stats in out.values())
    return out


def make_farm(net_config, chunk, n_workers, backend, **kwargs):
    return DecodeFarm.from_config(
        net_config,
        n_sessions=N_SESSIONS,
        farm=FarmConfig(n_workers=n_workers, ring_slot_samples=chunk, **kwargs),
        backend=backend,
    )


class TestInlineBackend:
    def test_matches_sequential(self, net_config, soak_capture, oracle):
        _buffer, chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=2, backend="inline")
        assert run_farm(farm, chunks) == oracle

    def test_coschedule_off_matches_sequential(
        self, net_config, soak_capture, oracle
    ):
        _buffer, chunks, chunk = soak_capture
        farm = make_farm(
            net_config, chunk, n_workers=2, backend="inline", coschedule=False
        )
        assert run_farm(farm, chunks) == oracle
        assert farm.batched_windows == 0

    def test_batched_gate_engages(self, net_config, soak_capture):
        _buffer, chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=1, backend="inline")
        run_farm(farm, chunks)
        # All sessions share one config (one memoised bank) on one
        # worker, so the stacked gate must have fired.
        assert farm.batched_windows > 0


class TestProcessBackend:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_sequential(
        self, net_config, soak_capture, oracle, n_workers
    ):
        _buffer, chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=n_workers, backend="process")
        assert run_farm(farm, chunks) == oracle

    def test_worker_utilization_reported(self, net_config, soak_capture):
        _buffer, chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=2, backend="process")
        run_farm(farm, chunks)
        assert set(farm.worker_utilization) == {0, 1}
        assert all(0.0 <= u <= 1.0 for u in farm.worker_utilization.values())


class TestMigration:
    def test_mid_run_migrate_is_bit_identical(
        self, net_config, soak_capture, oracle
    ):
        buffer, chunks, chunk = soak_capture
        half = len(chunks) // 2
        farm = make_farm(net_config, chunk, n_workers=2, backend="process")
        try:
            for piece in chunks[:half]:
                for sid in farm.session_ids:
                    farm.feed(sid, piece)
                farm.pump()

            moved = 1
            assert farm.worker_of(moved) == 1
            records = farm.migrate(moved, worker=0)
            assert farm.worker_of(moved) == 0
            # Buffered-but-unprocessed samples are not in the records:
            # re-feed the gap [position, samples_fed) like any restore.
            state = next(r for r in records if r["type"] == "state")
            gap = buffer[state["pos"] : state["samples_fed"]]
            if gap.size:
                farm.feed(moved, gap)

            for piece in chunks[half:]:
                for sid in farm.session_ids:
                    farm.feed(sid, piece)
                farm.pump()
            farm.finish()
            got = {
                sid: (farm.frames[sid], farm.session_stats[sid])
                for sid in farm.frames
            }
        finally:
            farm.close()
        assert got == oracle

    def test_drain_removes_session(self, net_config, soak_capture):
        _buffer, chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=2, backend="inline")
        try:
            farm.feed(0, chunks[0])
            farm.pump()
            records = farm.drain(0)
            assert farm.session_ids == [1, 2]
            assert records[0]["type"] == "header"
            with pytest.raises(KeyError):
                farm.feed(0, chunks[0])
            farm.restore(0, records)
            assert farm.session_ids == [0, 1, 2]
        finally:
            farm.close()

    def test_restore_rejects_live_session(self, net_config, soak_capture):
        _buffer, _chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=2, backend="inline")
        try:
            records = farm.drain(2)
            farm.restore(2, records)
            with pytest.raises(ValueError, match="already live"):
                farm.restore(2, records)
        finally:
            farm.close()


class TestLifecycle:
    def test_closed_farm_refuses_work(self, net_config, soak_capture):
        _buffer, chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=1, backend="inline")
        farm.close()
        with pytest.raises(RuntimeError, match="closed"):
            farm.feed(0, chunks[0])

    def test_context_manager_closes(self, net_config, soak_capture):
        _buffer, _chunks, chunk = soak_capture
        with make_farm(net_config, chunk, n_workers=1, backend="inline") as farm:
            pass
        assert farm._closed

    def test_feed_rejects_2d(self, net_config, soak_capture):
        import numpy as np

        _buffer, _chunks, chunk = soak_capture
        farm = make_farm(net_config, chunk, n_workers=1, backend="inline")
        try:
            with pytest.raises(ValueError, match="1-D"):
                farm.feed(0, np.zeros((2, 4)))
        finally:
            farm.close()
