"""Shared stimulus and oracles for the farm suite.

The stimulus is a soak-style capture (4 tags, moderate traffic) cut
into feed chunks.  The equivalence oracle is the sequential
:class:`SessionSupervisor` fed the identical chunks -- the farm's
contract is that its output is byte-identical to that run.

The chunk size doubles as ``ring_slot_samples`` so a feed never
splits across ring slots: ``session.quarantined`` counts sanitiser
calls, whose cadence follows ingest boundaries.
"""

import numpy as np
import pytest

from repro.receiver.session import SessionSupervisor
from repro.sim.experiments.soak import SoakConfig, build_soak_stack, build_soak_stream
from repro.sim.network import CbmaConfig


@pytest.fixture(scope="session")
def net_config():
    """The PHY config every farm session (and the oracle) decodes with."""
    return CbmaConfig(
        n_tags=4,
        seed=11,
        payload_bytes=4,
        code_length=32,
        samples_per_chip=1,
        user_threshold=0.25,
    )


@pytest.fixture(scope="session")
def soak_capture():
    """``(buffer, chunks, chunk_samples)`` of one deterministic capture."""
    cfg = SoakConfig(n_windows=30, n_tags=4, seed=11, traffic_rate=0.3)
    tags, stream = build_soak_stack(cfg)
    buffer, _offered = build_soak_stream(cfg, None, stream, tags)
    chunk = 3 * stream.hop_samples
    chunks = [buffer[lo : lo + chunk] for lo in range(0, buffer.size, chunk)]
    return buffer, chunks, chunk


def run_sequential(config, chunks, n_sessions):
    """The oracle: each session is a plain supervisor fed the chunks."""
    out = {}
    for sid in range(n_sessions):
        sup = SessionSupervisor.from_config(config)
        frames = []
        for piece in chunks:
            frames.extend(sup.feed(piece))
        frames.extend(sup.finish())
        out[sid] = (frames, dict(sup.stats))
    return out


def run_farm(farm, chunks):
    """Drive *farm* with the oracle cadence: feed all, pump, repeat."""
    try:
        for piece in chunks:
            for sid in farm.session_ids:
                farm.feed(sid, piece)
            farm.pump()
        farm.finish()
        return {
            sid: (farm.frames[sid], farm.session_stats[sid])
            for sid in farm.frames
        }
    finally:
        farm.close()
