"""Regression: the worker command loop polls instead of blocking.

An unbounded ``cmd_queue.get()`` meant a worker orphaned by a crashed
farm waited forever on a queue nobody would fill (LNT011).  The loop
now polls with :data:`repro.farm.worker._CMD_POLL_S` and re-checks the
parent process on every Empty.  These tests drive :func:`worker_main`
in a thread with plain queues -- in the test process
``multiprocessing.parent_process()`` is ``None``, exercising exactly
the idle-timeout -> liveness-check -> continue path.
"""

import queue
import threading

import numpy as np
import pytest

from repro.farm import ShmRing
from repro.farm import worker as worker_mod
from repro.farm.worker import worker_main


@pytest.fixture()
def ring():
    r = ShmRing(slots=4, slot_samples=16, dtype=np.complex128)
    yield r
    r.close()
    r.unlink()


def start_worker(ring, cmd_q, result_q):
    thread = threading.Thread(
        target=worker_main,
        args=(0, cmd_q, result_q, ring.name, 4, 16, "complex128", True),
        daemon=True,
    )
    thread.start()
    return thread


def test_idle_polls_survive_until_stop(ring, monkeypatch):
    monkeypatch.setattr(worker_mod, "_CMD_POLL_S", 0.02)
    cmd_q, result_q = queue.Queue(), queue.Queue()
    thread = start_worker(ring, cmd_q, result_q)
    # Let the loop hit queue.Empty several times before any command.
    deadline_polls = threading.Event()
    deadline_polls.wait(0.15)
    cmd_q.put(("stop",))
    worker_id, tag, busy, wall = result_q.get(timeout=5.0)
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert (worker_id, tag) == (0, "stopped")
    # Idle waiting is not billed as busy time.
    assert busy <= wall


def test_commands_after_idle_window_still_processed(ring, monkeypatch):
    monkeypatch.setattr(worker_mod, "_CMD_POLL_S", 0.02)
    cmd_q, result_q = queue.Queue(), queue.Queue()
    thread = start_worker(ring, cmd_q, result_q)
    threading.Event().wait(0.1)  # several empty polls first
    chunk = np.arange(8, dtype=np.complex128)
    slot = ring.claim()
    ring.write(slot, chunk)
    cmd_q.put(("feed", 1, slot, 8))  # unknown session would raise KeyError...
    msg = result_q.get(timeout=5.0)
    # ...which the loop reports as an error instead of hanging.
    assert msg[1] in ("free", "error")
    cmd_q.put(("stop",))
    thread.join(timeout=5.0)
    assert not thread.is_alive()


def test_poll_interval_is_bounded():
    # The liveness re-check cadence: long enough to stay off the hot
    # path, short enough that an orphan exits promptly.
    assert 0 < worker_mod._CMD_POLL_S <= 5.0
