"""ShmRing: slot lifecycle, bounds, and cross-mapping visibility."""

import numpy as np
import pytest

from repro.farm import ShmRing


@pytest.fixture()
def ring():
    r = ShmRing(slots=4, slot_samples=16, dtype=np.complex128)
    yield r
    r.close()
    r.unlink()


class TestLifecycle:
    def test_claim_write_view_roundtrip(self, ring):
        chunk = np.arange(10, dtype=np.complex128) + 1j
        slot = ring.claim()
        n = ring.write(slot, chunk)
        assert n == 10
        np.testing.assert_array_equal(ring.view(slot, n), chunk)

    def test_view_is_zero_copy(self, ring):
        slot = ring.claim()
        ring.write(slot, np.ones(4, dtype=np.complex128))
        view = ring.view(slot, 4)
        assert view.base is not None  # a view into the slab, not a copy

    def test_free_slot_accounting(self, ring):
        assert ring.free_slots == 4
        assert ring.occupancy == 0
        slot = ring.claim()
        assert ring.free_slots == 3
        assert ring.occupancy == 1
        ring.release(slot)
        assert ring.free_slots == 4

    def test_claim_exhausted_raises(self, ring):
        for _ in range(4):
            ring.claim()
        with pytest.raises(RuntimeError, match="no free ring slot"):
            ring.claim()

    def test_oversized_write_raises(self, ring):
        slot = ring.claim()
        with pytest.raises(ValueError, match="exceeds slot size"):
            ring.write(slot, np.zeros(17, dtype=np.complex128))


class TestAttach:
    def test_attached_mapping_sees_parent_writes(self, ring):
        chunk = np.linspace(0, 1, 8).astype(np.complex128) * (1 - 2j)
        slot = ring.claim()
        ring.write(slot, chunk)
        other = ShmRing.attach(ring.name, 4, 16, np.complex128)
        try:
            np.testing.assert_array_equal(other.view(slot, 8), chunk)
        finally:
            other.close()

    def test_attached_ring_does_not_unlink(self, ring):
        other = ShmRing.attach(ring.name, 4, 16, np.complex128)
        other.close()
        other.unlink()  # non-owner: must be a no-op
        # The segment must still be writable through the owner.
        slot = ring.claim()
        assert ring.write(slot, np.zeros(1, dtype=np.complex128)) == 1


class TestDtype:
    def test_complex64_slots(self):
        r = ShmRing(slots=2, slot_samples=8, dtype=np.complex64)
        try:
            slot = r.claim()
            r.write(slot, np.ones(3, dtype=np.complex64))
            assert r.view(slot, 3).dtype == np.dtype(np.complex64)
        finally:
            r.close()
            r.unlink()
