"""The complex64 fast path: dtype threading and checkpoint geometry."""

import numpy as np
import pytest

from repro.farm import DecodeFarm, FarmConfig
from repro.receiver.session import SessionSupervisor
from repro.receiver.streaming import StreamingReceiver
from tests.farm.conftest import run_farm


class TestSessionDtype:
    def test_ingest_buffer_narrows(self, net_config):
        sup = SessionSupervisor.from_config(net_config, dtype=np.complex64)
        sup.ingest(np.ones(32, dtype=np.complex128))
        assert sup._buf.dtype == np.dtype(np.complex64)

    def test_checkpoint_geometry_records_dtype(self, net_config):
        sup = SessionSupervisor.from_config(net_config, dtype=np.complex64)
        header = sup.checkpoint_records()[0]
        assert header["version"] == 2
        assert header["dtype"] == "complex64"

    def test_restore_rejects_dtype_mismatch(self, net_config):
        records = SessionSupervisor.from_config(net_config).checkpoint_records()
        narrow = StreamingReceiver.from_config(net_config, dtype=np.complex64)
        with pytest.raises(ValueError, match="geometry"):
            SessionSupervisor.from_checkpoint_records(records, narrow)

    def test_restore_accepts_matching_dtype(self, net_config):
        source = SessionSupervisor.from_config(net_config, dtype=np.complex64)
        records = source.checkpoint_records()
        narrow = StreamingReceiver.from_config(net_config, dtype=np.complex64)
        resumed = SessionSupervisor.from_checkpoint_records(records, narrow)
        assert resumed.position == source.position


class TestFarmDtype:
    def test_complex64_farm_runs_end_to_end(self, net_config, soak_capture):
        _buffer, chunks, chunk = soak_capture
        farm = DecodeFarm.from_config(
            net_config,
            n_sessions=2,
            farm=FarmConfig(
                n_workers=2, ring_slot_samples=chunk, dtype="complex64"
            ),
            backend="inline",
        )
        out = run_farm(farm, chunks)
        # Same high-SNR capture: narrowing the ingest path must not
        # cost deliveries (decode itself still runs in complex128).
        assert all(frames for frames, _stats in out.values())

    def test_process_farm_complex64_ring(self, net_config, soak_capture):
        _buffer, chunks, chunk = soak_capture
        farm = DecodeFarm.from_config(
            net_config,
            n_sessions=1,
            farm=FarmConfig(
                n_workers=1, ring_slot_samples=chunk, dtype="complex64"
            ),
            backend="process",
        )
        out = run_farm(farm, chunks[:6])
        assert 0 in out
