"""Worker-death recovery: claimed ring slots must not leak.

A worker that dies mid-stream leaves its in-flight slots claimed; the
parent must notice on its next blocking harvest, return those slots
to the free list, evict the dead worker's sessions, and raise
:class:`WorkerCrash` instead of hanging until the harvest timeout.
"""

import pytest

import repro.farm.farm as farm_mod
from repro.farm import DecodeFarm, FarmConfig, SessionSpec, WorkerCrash
from tests.farm.conftest import run_sequential


@pytest.fixture(autouse=True)
def fast_death_poll(monkeypatch):
    """Poll liveness every 50 ms so the tests stay quick."""
    monkeypatch.setattr(farm_mod, "_DEATH_POLL_S", 0.05)


def _specs(net_config, n):
    return [SessionSpec(session_id=i, config=net_config) for i in range(n)]


class TestWorkerCrashRecovery:
    def test_dead_worker_releases_claimed_slots(self, net_config, soak_capture):
        _, chunks, chunk_samples = soak_capture
        cfg = FarmConfig(n_workers=2, ring_slots=2, ring_slot_samples=chunk_samples)
        farm = DecodeFarm(_specs(net_config, 4), farm=cfg)
        try:
            farm.feed(0, chunks[0])
            farm.pump()
            victim = farm.worker_of(0)
            farm._procs[victim].kill()
            farm._procs[victim].join(timeout=5.0)
            # Saturate the victim's ring: with the worker dead nothing
            # frees slots, so the third feed blocks and must surface
            # the crash rather than wait out the harvest timeout.
            with pytest.raises(WorkerCrash) as exc:
                for piece in chunks[1:4]:
                    farm.feed(0, piece)
            crash = exc.value
            assert crash.worker == victim
            assert crash.released_slots, "in-flight slots were not reclaimed"
            assert farm._rings[victim].free_slots == cfg.ring_slots
            # The dead worker's sessions are gone; the others survive.
            assert all(farm.worker_of(sid) != victim for sid in farm.session_ids)
            assert crash.sessions == sorted(
                sid for sid in range(4) if sid % 2 == victim
            )
        finally:
            farm.close()

    def test_surviving_sessions_still_decode(self, net_config, soak_capture):
        _, chunks, chunk_samples = soak_capture
        cfg = FarmConfig(n_workers=2, ring_slots=2, ring_slot_samples=chunk_samples)
        farm = DecodeFarm(_specs(net_config, 2), farm=cfg)
        try:
            victim = farm.worker_of(0)
            survivor_sid = 1
            farm._procs[victim].kill()
            farm._procs[victim].join(timeout=5.0)
            with pytest.raises(WorkerCrash):
                for piece in chunks[:4]:
                    farm.feed(0, piece)
            for piece in chunks:
                farm.feed(survivor_sid, piece)
                farm.pump()
            tail = farm.finish_session(survivor_sid)
            assert farm.frames[survivor_sid], "survivor produced no frames"
            assert tail is not None
        finally:
            farm.close()

    def test_crash_is_not_raised_for_clean_stop(self, net_config, soak_capture):
        _, chunks, chunk_samples = soak_capture
        cfg = FarmConfig(n_workers=2, ring_slots=4, ring_slot_samples=chunk_samples)
        farm = DecodeFarm(_specs(net_config, 2), farm=cfg)
        try:
            for piece in chunks[:3]:
                for sid in farm.session_ids:
                    farm.feed(sid, piece)
                farm.pump()
            tails = farm.finish()
            assert set(tails) == {0, 1}
        finally:
            farm.close()


class TestDynamicMembership:
    def test_add_session_spreads_least_loaded(self, net_config, soak_capture):
        _, chunks, chunk_samples = soak_capture
        cfg = FarmConfig(n_workers=2, ring_slots=4, ring_slot_samples=chunk_samples)
        farm = DecodeFarm(_specs(net_config, 1), farm=cfg, backend="inline")
        try:
            assert farm.worker_of(0) == 0
            w1 = farm.add_session(SessionSpec(session_id=1, config=net_config))
            w2 = farm.add_session(SessionSpec(session_id=2, config=net_config))
            assert w1 == 1  # least-loaded
            assert w2 in (0, 1)
            with pytest.raises(ValueError, match="already live"):
                farm.add_session(SessionSpec(session_id=2, config=net_config))
        finally:
            farm.close()

    def test_finish_session_matches_sequential(self, net_config, soak_capture):
        _, chunks, chunk_samples = soak_capture
        cfg = FarmConfig(n_workers=2, ring_slots=4, ring_slot_samples=chunk_samples)
        farm = DecodeFarm(_specs(net_config, 2), farm=cfg, backend="inline")
        try:
            for piece in chunks:
                for sid in (0, 1):
                    farm.feed(sid, piece)
                farm.pump()
            farm.finish_session(0)
            assert 0 not in farm.session_ids
            assert farm.session_ids == [1]
            farm.finish_session(1)
            expected = run_sequential(net_config, chunks, 2)
            for sid in (0, 1):
                assert farm.frames[sid] == expected[sid][0]
                assert farm.session_stats[sid] == expected[sid][1]
            with pytest.raises(KeyError):
                farm.finish_session(0)
        finally:
            farm.close()

    def test_finish_session_process_backend(self, net_config, soak_capture):
        _, chunks, chunk_samples = soak_capture
        cfg = FarmConfig(n_workers=2, ring_slots=4, ring_slot_samples=chunk_samples)
        farm = DecodeFarm(_specs(net_config, 2), farm=cfg)
        try:
            for piece in chunks:
                for sid in (0, 1):
                    farm.feed(sid, piece)
                farm.pump()
            farm.finish_session(0)
            farm.finish_session(1)
            expected = run_sequential(net_config, chunks, 2)
            for sid in (0, 1):
                assert farm.frames[sid] == expected[sid][0]
                assert farm.session_stats[sid] == expected[sid][1]
        finally:
            farm.close()

    def test_slot_waits_counter_is_public(self, net_config, soak_capture):
        _, chunks, chunk_samples = soak_capture
        cfg = FarmConfig(n_workers=1, ring_slots=4, ring_slot_samples=chunk_samples)
        farm = DecodeFarm(_specs(net_config, 1), farm=cfg, backend="inline")
        try:
            assert farm.slot_waits == 0
        finally:
            farm.close()
