"""FarmConfig / SessionSpec validation and the from_config factories."""

import numpy as np
import pytest

from repro.farm import DecodeFarm, FarmConfig, SessionSpec
from repro.receiver.session import SessionSupervisor
from repro.receiver.streaming import StreamingReceiver
from repro.sim.network import CbmaConfig


@pytest.fixture(scope="module")
def cfg():
    return CbmaConfig(n_tags=2, seed=3, payload_bytes=4, code_length=32)


class TestFarmConfig:
    def test_defaults(self):
        fc = FarmConfig()
        assert fc.n_workers == 2
        assert fc.ring_slots >= 2
        assert fc.dtype == "complex128"
        assert fc.numpy_dtype == np.dtype(np.complex128)

    def test_complex64_dtype(self):
        assert FarmConfig(dtype="complex64").numpy_dtype == np.dtype(np.complex64)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"ring_slots": 1},
            {"ring_slot_samples": 0},
            {"dtype": "float64"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FarmConfig(**kwargs)


class TestSessionSpec:
    def test_negative_id_rejected(self, cfg):
        with pytest.raises(ValueError):
            SessionSpec(session_id=-1, config=cfg)

    def test_frozen(self, cfg):
        spec = SessionSpec(session_id=0, config=cfg)
        with pytest.raises(AttributeError):
            spec.session_id = 1


class TestFarmConstruction:
    def test_requires_specs(self):
        with pytest.raises(ValueError, match="at least one session"):
            DecodeFarm([], backend="inline")

    def test_rejects_duplicate_ids(self, cfg):
        specs = [SessionSpec(session_id=0, config=cfg)] * 2
        with pytest.raises(ValueError, match="unique"):
            DecodeFarm(specs, backend="inline")

    def test_rejects_unknown_backend(self, cfg):
        with pytest.raises(ValueError, match="backend"):
            DecodeFarm([SessionSpec(session_id=0, config=cfg)], backend="threads")

    def test_from_config_rejects_zero_sessions(self, cfg):
        with pytest.raises(ValueError):
            DecodeFarm.from_config(cfg, n_sessions=0, backend="inline")

    def test_round_robin_placement(self, cfg):
        farm = DecodeFarm.from_config(
            cfg, n_sessions=5, farm=FarmConfig(n_workers=2), backend="inline"
        )
        assert farm.session_ids == [0, 1, 2, 3, 4]
        assert [farm.worker_of(s) for s in farm.session_ids] == [0, 1, 0, 1, 0]
        farm.close()


class TestFactories:
    def test_streaming_from_config_pins_frame_bits(self, cfg):
        stream = StreamingReceiver.from_config(cfg)
        assert stream.max_frame_bits == cfg.frame_bits()

    def test_streaming_from_config_reuses_receiver(self, cfg):
        inner = StreamingReceiver.from_config(cfg).receiver
        stream = StreamingReceiver.from_config(cfg, receiver=inner)
        assert stream.receiver is inner

    def test_streaming_rejects_unknown_dtype(self, cfg):
        with pytest.raises(ValueError):
            StreamingReceiver.from_config(cfg, dtype=np.float64)

    def test_session_from_config_threads_dtype(self, cfg):
        sup = SessionSupervisor.from_config(cfg, dtype=np.complex64)
        assert sup.streaming.dtype == np.dtype(np.complex64)
        sup.ingest(np.zeros(8, dtype=np.complex128))
        assert sup._buf.dtype == np.dtype(np.complex64)

    def test_session_from_config_default_dtype(self, cfg):
        sup = SessionSupervisor.from_config(cfg)
        assert sup.streaming.dtype == np.dtype(np.complex128)
