"""Unit tests for repro.mac.link_adaptation."""

import numpy as np
import pytest

from repro.mac.link_adaptation import SpreadingFactorController


def _channel(knee_length: int):
    """Synthetic channel: FER ~0 above the knee length, high below it."""

    def measure(length: int, rounds: int) -> float:
        return 0.02 if length >= knee_length else 0.85

    return measure


class TestValidation:
    def test_lengths_must_ascend(self):
        with pytest.raises(ValueError):
            SpreadingFactorController(lengths=(64, 32))

    def test_lengths_nonempty(self):
        with pytest.raises(ValueError):
            SpreadingFactorController(lengths=())

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            SpreadingFactorController(ewma_alpha=0.0)

    def test_epochs_positive(self):
        ctrl = SpreadingFactorController()
        with pytest.raises(ValueError):
            ctrl.run(_channel(64), n_epochs=0)

    def test_start_length_must_be_candidate(self):
        ctrl = SpreadingFactorController(lengths=(32, 64))
        with pytest.raises(ValueError):
            ctrl.run(_channel(64), start_length=48)


class TestAdaptation:
    def test_converges_to_knee(self):
        """The goodput optimum is the shortest workable length."""
        ctrl = SpreadingFactorController(lengths=(32, 64, 128, 256))
        result = ctrl.run(_channel(64), n_epochs=20, rng=np.random.default_rng(0))
        assert result.chosen_length == 64

    def test_prefers_short_when_everything_works(self):
        ctrl = SpreadingFactorController(lengths=(32, 64, 128))
        result = ctrl.run(_channel(32), n_epochs=20, rng=np.random.default_rng(1))
        assert result.chosen_length == 32

    def test_retreats_to_long_codes_in_bad_channel(self):
        ctrl = SpreadingFactorController(lengths=(32, 64, 128, 256))
        result = ctrl.run(_channel(256), n_epochs=30, rng=np.random.default_rng(2))
        assert result.chosen_length == 256

    def test_history_recorded(self):
        ctrl = SpreadingFactorController(lengths=(32, 64))
        result = ctrl.run(_channel(32), n_epochs=6, rng=np.random.default_rng(3))
        assert len(result.history) == 6
        epochs = [h[0] for h in result.history]
        assert epochs == list(range(6))

    def test_probing_explores_neighbours(self):
        ctrl = SpreadingFactorController(lengths=(32, 64, 128), probe_period=2)
        result = ctrl.run(_channel(32), n_epochs=12, rng=np.random.default_rng(4))
        assert len(result.lengths_tried()) >= 2

    def test_hysteresis_resists_noise(self):
        """A noisy but statistically flat channel should not thrash."""
        rng_noise = np.random.default_rng(5)

        def noisy(length, rounds):
            return float(np.clip(0.05 + rng_noise.normal(0, 0.02), 0, 1))

        ctrl = SpreadingFactorController(lengths=(32, 64, 128), hysteresis=0.1)
        result = ctrl.run(noisy, n_epochs=20, start_length=32, rng=np.random.default_rng(6))
        # 32 has the best rate; flat FER means no reason to leave it.
        assert result.chosen_length == 32

    def test_goodput_score_shape(self):
        ctrl = SpreadingFactorController(lengths=(32, 64))
        ctrl._update(32, 0.5)
        ctrl._update(64, 0.0)
        assert ctrl.goodput_score(32) == pytest.approx(0.5 / 32)
        assert ctrl.goodput_score(64) == pytest.approx(1.0 / 64)
        assert ctrl.best_length() == 32


class TestIntegrationWithNetwork:
    def test_adapts_on_real_simulator(self):
        """Drive the controller with the actual CBMA network at a harsh
        distance: it must leave the short code it starts on."""
        from repro.channel.geometry import Deployment
        from repro.sim.network import CbmaConfig, CbmaNetwork

        def measure(length: int, rounds: int) -> float:
            cfg = CbmaConfig(n_tags=3, seed=29, code_length=int(length))
            net = CbmaNetwork(cfg, Deployment.linear(3, tag_to_rx=3.5))
            return net.run_rounds(rounds).fer

        ctrl = SpreadingFactorController(lengths=(16, 64, 128))
        result = ctrl.run(
            measure, n_epochs=8, rounds_per_epoch=12,
            start_length=16, rng=np.random.default_rng(7),
        )
        assert result.chosen_length >= 64
