"""Unit tests for repro.mac.baselines."""

import numpy as np
import pytest

from repro.mac.baselines.fdma import Fdma
from repro.mac.baselines.fsa import FramedSlottedAloha
from repro.mac.baselines.single_tag import SingleTagTdma


class TestSingleTagTdma:
    def test_perfect_channel(self):
        tdma = SingleTagTdma([0, 1, 2], lambda tid: 1.0)
        result = tdma.run(300, np.random.default_rng(0))
        assert result.successes == 300
        assert result.success_rate == 1.0
        # Round-robin fairness.
        assert all(result.per_tag_successes[t] == 100 for t in range(3))

    def test_lossy_channel_statistics(self):
        tdma = SingleTagTdma([0], lambda tid: 0.5)
        result = tdma.run(10_000, np.random.default_rng(1))
        assert result.success_rate == pytest.approx(0.5, abs=0.03)

    def test_goodput(self):
        tdma = SingleTagTdma([0], lambda tid: 1.0)
        result = tdma.run(100, np.random.default_rng(0))
        # 100 successes x 128 bits over 100 slots x 1 ms = 128 kbps.
        assert result.goodput_bps(128, 1e-3) == pytest.approx(128_000)

    def test_empty_tags(self):
        result = SingleTagTdma([], lambda tid: 1.0).run(10)
        assert result.successes == 0

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            SingleTagTdma([0], lambda tid: 1.0).run(-1)

    def test_goodput_invalid_duration(self):
        result = SingleTagTdma([0], lambda tid: 1.0).run(10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            result.goodput_bps(128, 0.0)


class TestFsa:
    def test_slot_efficiency_bounded_by_1_over_e(self):
        """Saturated FSA cannot beat the slotted-ALOHA limit."""
        fsa = FramedSlottedAloha(list(range(20)), lambda tid: 1.0)
        result = fsa.run(400, np.random.default_rng(2))
        assert result.slot_efficiency <= 0.42  # 1/e + sampling slack

    def test_efficiency_near_optimum_with_matched_frame(self):
        fsa = FramedSlottedAloha(list(range(16)), lambda tid: 1.0, adapt=False)
        result = fsa.run(400, np.random.default_rng(3))
        assert result.slot_efficiency == pytest.approx(0.368, abs=0.05)

    def test_slot_accounting(self):
        fsa = FramedSlottedAloha([0, 1, 2], lambda tid: 1.0, adapt=False)
        result = fsa.run(50, np.random.default_rng(4))
        assert result.empty_slots + result.singleton_slots + result.collision_slots == result.slots

    def test_collisions_always_lost(self):
        """Two tags, one slot: every frame collides, zero successes."""
        fsa = FramedSlottedAloha([0, 1], lambda tid: 1.0, initial_frame_size=1, adapt=False)
        result = fsa.run(50, np.random.default_rng(5))
        assert result.successes == 0
        assert result.collision_slots == 50

    def test_phy_loss_applies_to_singletons(self):
        fsa = FramedSlottedAloha([0], lambda tid: 0.0, adapt=False)
        result = fsa.run(50, np.random.default_rng(6))
        assert result.singleton_slots == 50
        assert result.successes == 0

    def test_adaptation_tracks_backlog(self):
        """With adaptation on, efficiency stays healthy even when the
        initial frame size is badly wrong."""
        fsa = FramedSlottedAloha(list(range(30)), lambda tid: 1.0, initial_frame_size=2)
        result = fsa.run(200, np.random.default_rng(7))
        assert result.slot_efficiency > 0.2

    def test_invalid_frames(self):
        with pytest.raises(ValueError):
            FramedSlottedAloha([0], lambda tid: 1.0).run(-1)


class TestFdma:
    def test_fewer_tags_than_channels(self):
        fdma = Fdma([0, 1], n_channels=4, success_probability=lambda tid: 1.0)
        result = fdma.run(100, np.random.default_rng(8))
        assert result.successes == 200

    def test_time_sharing_beyond_channel_count(self):
        fdma = Fdma(list(range(8)), n_channels=4, success_probability=lambda tid: 1.0)
        result = fdma.run(100, np.random.default_rng(9))
        # 4 channels x 100 rounds, each channel serving 2 tags alternately.
        assert result.successes == 400
        assert all(result.per_tag_successes[t] == 50 for t in range(8))

    def test_goodput_divides_bandwidth(self):
        fdma = Fdma([0, 1], n_channels=2, success_probability=lambda tid: 1.0)
        result = fdma.run(100, np.random.default_rng(10))
        # Each sub-channel at half rate: aggregate equals one full channel.
        assert result.goodput_bps(128, 1e-3, n_channels=2) == pytest.approx(128_000)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            Fdma([0], n_channels=0, success_probability=lambda tid: 1.0).run(1)

    def test_empty_tags(self):
        fdma = Fdma([], n_channels=2, success_probability=lambda tid: 1.0)
        assert fdma.run(10).successes == 0
