"""Unit tests for repro.mac.arq."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.faults import AckLoss, FaultPlan
from repro.mac.arq import ArqSimulator, ArqStats, Message
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.sim.traffic import PoissonArrivals


def _network(n_tags=2, distance=1.0, seed=11, payload_bytes=8, faults=None):
    cfg = CbmaConfig(n_tags=n_tags, seed=seed, payload_bytes=payload_bytes)
    return CbmaNetwork(cfg, Deployment.linear(n_tags, tag_to_rx=distance), faults=faults)


class SingleBurst:
    """Deterministic traffic: *count* messages at tag 0 on the first
    draw, silence afterwards."""

    def __init__(self, count=1):
        self._pending = count

    def draw(self, n_tags, duration_s, rng):
        counts = [0] * n_tags
        counts[0], self._pending = self._pending, 0
        return counts


class TestMessage:
    def test_latency(self):
        m = Message(0, 1, b"x", arrival_time_s=1.0)
        assert m.latency_s is None
        m.delivered_time_s = 1.5
        assert m.latency_s == pytest.approx(0.5)


class TestArqStats:
    def test_empty(self):
        s = ArqStats()
        assert s.delivery_ratio == 1.0
        assert s.mean_latency_s == 0.0
        assert s.mean_attempts == 0.0
        assert s.goodput_bps(100) == 0.0

    def test_goodput(self):
        s = ArqStats(delivered=10, elapsed_s=2.0)
        assert s.goodput_bps(100) == 500.0


class TestArqSimulator:
    def test_payload_too_small_rejected(self):
        net = _network(payload_bytes=1)
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(1.0))

    def test_invalid_limits(self):
        net = _network()
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(1.0), max_retries=0)
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(1.0), max_queue=0)

    def test_reliable_delivery_good_channel(self):
        net = _network()
        rate = 0.3 / net.config.frame_duration_s()
        sim = ArqSimulator(net, PoissonArrivals(rate))
        stats = sim.run(60, rng=np.random.default_rng(7))
        assert stats.offered > 10
        backlog = sum(len(q) for q in sim.queues.values())
        assert stats.delivered + stats.dropped + backlog == stats.offered
        assert stats.delivery_ratio > 0.9
        assert stats.duplicates == 0

    def test_no_traffic_no_rounds_transmitted(self):
        net = _network()
        sim = ArqSimulator(net, PoissonArrivals(0.0))
        stats = sim.run(10, rng=np.random.default_rng(0))
        assert stats.offered == 0
        assert stats.transmissions == 0

    def test_latencies_grow_with_load(self):
        lat = {}
        for label, load in (("light", 0.2), ("heavy", 1.5)):
            net = _network(seed=13)
            rate = load / net.config.frame_duration_s()
            sim = ArqSimulator(net, PoissonArrivals(rate))
            stats = sim.run(80, rng=np.random.default_rng(1))
            lat[label] = stats.mean_latency_s
        assert lat["heavy"] > lat["light"]

    def test_bad_channel_drops_after_retries(self):
        """A dead link (hopeless distance) must drop, not hang."""
        net = _network(distance=8.0, seed=3)
        rate = 0.3 / net.config.frame_duration_s()
        sim = ArqSimulator(net, PoissonArrivals(rate), max_retries=3, max_queue=4)
        stats = sim.run(40, rng=np.random.default_rng(2))
        assert stats.delivered < stats.offered
        assert stats.dropped > 0

    def test_queue_capacity_enforced(self):
        net = _network(distance=8.0, seed=3)  # nothing ever delivers
        rate = 5.0 / net.config.frame_duration_s()
        sim = ArqSimulator(net, PoissonArrivals(rate), max_retries=50, max_queue=3)
        sim.run(10, rng=np.random.default_rng(4))
        assert all(len(q) <= 3 for q in sim.queues.values())

    def test_negative_rounds_rejected(self):
        sim = ArqSimulator(_network(), PoissonArrivals(1.0))
        with pytest.raises(ValueError):
            sim.run(-1)


class TestBackoffBoundaries:
    """Exponential-backoff and retry-limit edge cases (exact counts)."""

    def test_backoff_schedule_doubles_then_caps(self):
        sim = ArqSimulator(
            _network(),
            PoissonArrivals(0.0),
            backoff_base_rounds=2,
            backoff_cap_rounds=16,
        )
        assert [sim._backoff_rounds(a) for a in (1, 2, 3, 4, 5)] == [2, 4, 8, 16, 16]

    def test_zero_base_disables_backoff(self):
        sim = ArqSimulator(_network(), PoissonArrivals(0.0), backoff_base_rounds=0)
        assert sim._backoff_rounds(1) == 0
        assert sim._backoff_rounds(10) == 0

    def test_invalid_backoff_bounds_rejected(self):
        with pytest.raises(ValueError):
            ArqSimulator(_network(), PoissonArrivals(0.0), backoff_base_rounds=-1)
        with pytest.raises(ValueError):
            ArqSimulator(
                _network(),
                PoissonArrivals(0.0),
                backoff_base_rounds=4,
                backoff_cap_rounds=2,
            )
        with pytest.raises(ValueError):
            ArqSimulator(_network(), PoissonArrivals(0.0), ack_loss_prob=1.1)

    def test_every_ack_lost_still_delivers_exactly_once(self):
        """ack_loss_prob=1.0 on a clean channel: the receiver dedupes
        each retransmission, so retries to the cap cost duplicates --
        never a second delivery, never a drop."""
        sim = ArqSimulator(
            _network(),
            SingleBurst(),
            max_retries=3,
            backoff_base_rounds=0,
            ack_loss_prob=1.0,
        )
        stats = sim.run(8, rng=np.random.default_rng(0))
        assert stats.offered == 1
        assert stats.delivered == 1
        assert stats.transmissions == 3  # all retries spent
        assert stats.duplicates == 2
        assert stats.acks_lost == 3
        assert stats.dropped == 0
        assert all(not q for q in sim.queues.values())

    def test_delivery_on_final_attempt_is_not_a_drop(self):
        """attempts == max_retries with the data already delivered must
        retire the message as delivered, not dropped."""
        sim = ArqSimulator(
            _network(), SingleBurst(), max_retries=1, ack_loss_prob=1.0
        )
        stats = sim.run(4, rng=np.random.default_rng(1))
        assert stats.delivered == 1
        assert stats.duplicates == 0
        assert stats.acks_lost == 1
        assert stats.dropped == 0

    def test_fault_injected_ack_loss_costs_one_duplicate(self):
        """AckLoss active only in round 0: exactly one retransmission,
        deduped into exactly one duplicate."""
        plan = FaultPlan(
            [AckLoss(probability=1.0, start_round=0, end_round=1)], seed=0
        )
        sim = ArqSimulator(
            _network(faults=plan),
            SingleBurst(),
            max_retries=4,
            backoff_base_rounds=0,
        )
        stats = sim.run(6, rng=np.random.default_rng(2))
        assert stats.delivered == 1
        assert stats.duplicates == 1
        assert stats.acks_lost == 1
        assert stats.transmissions == 2

    def test_drop_exactly_at_retry_limit(self):
        """A dead link spends precisely max_retries transmissions."""
        sim = ArqSimulator(
            _network(distance=25.0, seed=3),
            SingleBurst(),
            max_retries=2,
            backoff_base_rounds=0,
        )
        stats = sim.run(6, rng=np.random.default_rng(3))
        assert stats.offered == 1
        assert stats.delivered == 0
        assert stats.transmissions == 2
        assert stats.dropped == 1
        assert all(not q for q in sim.queues.values())


class TestTrafficStateIsolation:
    """Regression: a traffic model reused across ArqSimulator lifetimes
    must not leak window/occupancy state between runs."""

    def test_back_to_back_runs_identical_with_shared_periodic_model(self):
        from repro.sim.traffic import PeriodicArrivals

        traffic = PeriodicArrivals(period_s=0.05)

        def run():
            # Constructing the simulator resets the shared model, so the
            # second run starts from window zero like the first.
            sim = ArqSimulator(_network(seed=21), traffic, backoff_base_rounds=0)
            return sim.run(8, rng=np.random.default_rng(9))

        a, b = run(), run()
        assert a.offered == b.offered
        assert a.delivered == b.delivered
        assert a.transmissions == b.transmissions
        assert a.latencies_s == b.latencies_s


class TestBackoffStrategyHook:
    """ArqSimulator accepts a duck-typed contention-window strategy."""

    class _FixedWait:
        def __init__(self, wait):
            self.wait = wait
            self.failures = 0
            self.successes = 0

        def initial_cw(self):
            return 4.0

        def on_failure(self, cw, attempts):
            self.failures += 1
            return cw * 2

        def on_success(self, cw):
            self.successes += 1
            return 4.0

        def delay_slots(self, cw, rng):
            return self.wait

    def test_strategy_drives_retransmission_timer(self):
        strategy = self._FixedWait(wait=3)
        sim = ArqSimulator(
            _network(distance=25.0, seed=3),  # dead link: every try fails
            SingleBurst(),
            max_retries=2,
            backoff=strategy,
        )
        stats = sim.run(6, rng=np.random.default_rng(3))
        # attempt at round 0, wait 3, attempt at round 4 (timer expires
        # after 3 idle rounds), then the retry limit drops the message.
        assert stats.transmissions == 2
        assert strategy.failures == 1  # final attempt drops, no backoff
        assert stats.dropped == 1

    def test_strategy_success_callback_fires(self):
        strategy = self._FixedWait(wait=1)
        sim = ArqSimulator(_network(seed=11), SingleBurst(), backoff=strategy)
        stats = sim.run(4, rng=np.random.default_rng(1))
        assert stats.delivered == 1
        assert strategy.successes == 1
