"""Unit tests for repro.mac.arq."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.mac.arq import ArqSimulator, ArqStats, Message
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.sim.traffic import PoissonArrivals


def _network(n_tags=2, distance=1.0, seed=11, payload_bytes=8):
    cfg = CbmaConfig(n_tags=n_tags, seed=seed, payload_bytes=payload_bytes)
    return CbmaNetwork(cfg, Deployment.linear(n_tags, tag_to_rx=distance))


class TestMessage:
    def test_latency(self):
        m = Message(0, 1, b"x", arrival_time_s=1.0)
        assert m.latency_s is None
        m.delivered_time_s = 1.5
        assert m.latency_s == pytest.approx(0.5)


class TestArqStats:
    def test_empty(self):
        s = ArqStats()
        assert s.delivery_ratio == 1.0
        assert s.mean_latency_s == 0.0
        assert s.mean_attempts == 0.0
        assert s.goodput_bps(100) == 0.0

    def test_goodput(self):
        s = ArqStats(delivered=10, elapsed_s=2.0)
        assert s.goodput_bps(100) == 500.0


class TestArqSimulator:
    def test_payload_too_small_rejected(self):
        net = _network(payload_bytes=1)
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(1.0))

    def test_invalid_limits(self):
        net = _network()
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(1.0), max_retries=0)
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(1.0), max_queue=0)

    def test_reliable_delivery_good_channel(self):
        net = _network()
        rate = 0.3 / net.config.frame_duration_s()
        sim = ArqSimulator(net, PoissonArrivals(rate))
        stats = sim.run(60, rng=np.random.default_rng(7))
        assert stats.offered > 10
        backlog = sum(len(q) for q in sim.queues.values())
        assert stats.delivered + stats.dropped + backlog == stats.offered
        assert stats.delivery_ratio > 0.9
        assert stats.duplicates == 0

    def test_no_traffic_no_rounds_transmitted(self):
        net = _network()
        sim = ArqSimulator(net, PoissonArrivals(0.0))
        stats = sim.run(10, rng=np.random.default_rng(0))
        assert stats.offered == 0
        assert stats.transmissions == 0

    def test_latencies_grow_with_load(self):
        lat = {}
        for label, load in (("light", 0.2), ("heavy", 1.5)):
            net = _network(seed=13)
            rate = load / net.config.frame_duration_s()
            sim = ArqSimulator(net, PoissonArrivals(rate))
            stats = sim.run(80, rng=np.random.default_rng(1))
            lat[label] = stats.mean_latency_s
        assert lat["heavy"] > lat["light"]

    def test_bad_channel_drops_after_retries(self):
        """A dead link (hopeless distance) must drop, not hang."""
        net = _network(distance=8.0, seed=3)
        rate = 0.3 / net.config.frame_duration_s()
        sim = ArqSimulator(net, PoissonArrivals(rate), max_retries=3, max_queue=4)
        stats = sim.run(40, rng=np.random.default_rng(2))
        assert stats.delivered < stats.offered
        assert stats.dropped > 0

    def test_queue_capacity_enforced(self):
        net = _network(distance=8.0, seed=3)  # nothing ever delivers
        rate = 5.0 / net.config.frame_duration_s()
        sim = ArqSimulator(net, PoissonArrivals(rate), max_retries=50, max_queue=3)
        sim.run(10, rng=np.random.default_rng(4))
        assert all(len(q) <= 3 for q in sim.queues.values())

    def test_negative_rounds_rejected(self):
        sim = ArqSimulator(_network(), PoissonArrivals(1.0))
        with pytest.raises(ValueError):
            sim.run(-1)
