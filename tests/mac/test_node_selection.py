"""Unit tests for repro.mac.node_selection."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment, Point, Room
from repro.channel.pathloss import LinkBudget
from repro.mac.node_selection import NodeSelector


def _deployment():
    """Two good positions near the devices, two active spots far away."""
    dep = Deployment(room=Room(width=10, depth=10))
    dep.tags = [
        Point(4.0, 4.0),   # 0: active, terrible
        Point(0.0, 0.1),   # 1: active, good
        Point(0.1, 0.0),   # 2: idle, good
        Point(4.5, 4.5),   # 3: idle, terrible
    ]
    return dep


class TestNodeSelector:
    def test_strength_ordering(self):
        sel = NodeSelector(deployment=_deployment(), budget=LinkBudget())
        assert sel.strength_dbm(1) > sel.strength_dbm(0)
        assert sel.strength_dbm(2) > sel.strength_dbm(3)

    def test_replaces_bad_tag_with_stronger_idle(self):
        # Cold annealing: only strength-improving swaps are accepted,
        # so the bad tag must land on the good idle position.
        sel = NodeSelector(
            deployment=_deployment(), budget=LinkBudget(), initial_temperature=0.01
        )
        result = sel.select_round([0, 1], ack_ratios=[0.1, 0.95], rng=np.random.default_rng(0))
        assert 0 in result.replaced
        assert 2 in result.group  # picked the good idle position
        assert 1 in result.group  # good tag untouched

    def test_good_tags_untouched(self):
        sel = NodeSelector(deployment=_deployment(), budget=LinkBudget())
        result = sel.select_round([0, 1], ack_ratios=[0.9, 0.9], rng=np.random.default_rng(0))
        assert result.replaced == []
        assert result.group == [0, 1]

    def test_mismatched_lengths(self):
        sel = NodeSelector(deployment=_deployment(), budget=LinkBudget())
        with pytest.raises(ValueError):
            sel.select_round([0, 1], ack_ratios=[0.5])

    def test_exclusion_radius(self):
        """Idle candidates too close to a selected tag are skipped."""
        dep = _deployment()
        # Make candidate 2 sit within lambda/2 of active tag 1.
        dep.tags[2] = Point(0.0, 0.12)
        sel = NodeSelector(deployment=dep, budget=LinkBudget(), exclusion_radius_m=0.2)
        result = sel.select_round([0, 1], ack_ratios=[0.1, 0.9], rng=np.random.default_rng(1))
        assert 2 not in result.group

    def test_annealing_acceptance_decays(self):
        """Later rounds accept fewer worse candidates."""
        dep = Deployment(room=Room(width=10, depth=10))
        # One active good tag that keeps "failing", idle options all worse.
        dep.tags = [Point(0.0, 0.1)] + [Point(3 + 0.2 * k, 3.0) for k in range(8)]
        early_accepts = 0
        late_accepts = 0
        trials = 200
        for k in range(trials):
            sel = NodeSelector(
                deployment=dep, budget=LinkBudget(),
                initial_temperature=6.0, cooling=0.5,
            )
            rng = np.random.default_rng(k)
            r0 = sel.select_round([0], [0.0], rng=rng)
            early_accepts += r0.accepted_worse
            for _ in range(6):
                sel.select_round([0], [1.0], rng=rng)  # just advance the round counter
            r_late = sel.select_round([0], [0.0], rng=rng)
            late_accepts += r_late.accepted_worse
        assert early_accepts > late_accepts

    def test_no_idle_candidates(self):
        dep = Deployment(room=Room(width=10, depth=10))
        dep.tags = [Point(0, 0.1), Point(0.1, 0)]
        sel = NodeSelector(deployment=dep, budget=LinkBudget())
        result = sel.select_round([0, 1], [0.0, 0.0], rng=np.random.default_rng(0))
        assert result.group == [0, 1]

    def test_default_exclusion_is_half_wavelength(self):
        sel = NodeSelector(deployment=_deployment(), budget=LinkBudget())
        assert sel.exclusion_radius_m == pytest.approx(LinkBudget().wavelength_m / 2)


class TestBlacklist:
    """Graceful degradation: persistently-failing positions are benched
    and readmitted after a cooling-off period."""

    def _selector(self, **kwargs):
        return NodeSelector(deployment=_deployment(), budget=LinkBudget(), **kwargs)

    def test_blacklists_after_consecutive_failures(self):
        sel = self._selector(blacklist_after=3, readmit_after=100)
        # The same group keeps reporting dead air for three rounds.
        for r in range(3):
            result = sel.select_round([0, 1], ack_ratios=[0.0, 0.0],
                                      rng=np.random.default_rng(r))
        assert sel.blacklisted == [0, 1]
        assert result.blacklisted == [0, 1]
        # Benched positions never come back as idle candidates.
        result = sel.select_round([2, 3], ack_ratios=[0.0, 0.0],
                                  rng=np.random.default_rng(9))
        assert not set(result.group) & {0, 1}

    def test_single_bad_round_does_not_blacklist(self):
        sel = self._selector(blacklist_after=3, readmit_after=100)
        sel.select_round([0, 1], ack_ratios=[0.0, 0.9], rng=np.random.default_rng(0))
        assert sel.blacklisted == []

    def test_good_round_resets_streak(self):
        sel = self._selector(blacklist_after=2, readmit_after=100)
        sel.select_round([0, 1], ack_ratios=[0.0, 0.9], rng=np.random.default_rng(0))
        sel.select_round([0, 1], ack_ratios=[0.9, 0.9], rng=np.random.default_rng(1))
        sel.select_round([0, 1], ack_ratios=[0.0, 0.9], rng=np.random.default_rng(2))
        assert sel.blacklisted == []

    def test_readmission_after_cooldown(self):
        sel = self._selector(blacklist_after=1, readmit_after=2)
        result = sel.select_round([0, 1], ack_ratios=[0.0, 0.0],
                                  rng=np.random.default_rng(0))
        benched = list(sel.blacklisted)
        assert benched
        readmitted = []
        for r in range(1, 5):
            result = sel.select_round(result.group,
                                      ack_ratios=[0.9] * len(result.group),
                                      rng=np.random.default_rng(r))
            readmitted.extend(result.readmitted)
        assert set(benched) <= set(readmitted)
        assert sel.blacklisted == []

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            self._selector(blacklist_after=0)
        with pytest.raises(ValueError):
            self._selector(readmit_after=0)
