"""Unit tests for repro.mac.baselines.netscatter."""

import numpy as np
import pytest

from repro.mac.baselines.netscatter import ChirpPhy, NetscatterResult, NetscatterSimulator


class TestChirpPhy:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            ChirpPhy(100)

    def test_base_chirp_unit_modulus(self):
        phy = ChirpPhy(64)
        assert np.allclose(np.abs(phy.base_chirp), 1.0)

    def test_shift_lands_in_its_bin(self):
        phy = ChirpPhy(64)
        for shift in (0, 1, 17, 63):
            spectrum = np.abs(phy.dechirp(phy.tag_symbol(shift)))
            assert int(np.argmax(spectrum)) == phy.bin_of_shift(shift)
            assert spectrum.max() == pytest.approx(1.0)

    def test_shifts_are_orthogonal(self):
        """Two different shifts never leak into each other's bin."""
        phy = ChirpPhy(64)
        combined = phy.tag_symbol(5) + phy.tag_symbol(20)
        spectrum = np.abs(phy.dechirp(combined))
        assert spectrum[phy.bin_of_shift(5)] == pytest.approx(1.0, abs=1e-9)
        assert spectrum[phy.bin_of_shift(20)] == pytest.approx(1.0, abs=1e-9)
        others = np.delete(spectrum, [phy.bin_of_shift(5), phy.bin_of_shift(20)])
        assert np.max(others) < 1e-9

    def test_shift_bounds(self):
        with pytest.raises(ValueError):
            ChirpPhy(64).tag_symbol(64)

    def test_dechirp_length_check(self):
        with pytest.raises(ValueError):
            ChirpPhy(64).dechirp(np.zeros(32))

    def test_detect_bins(self):
        phy = ChirpPhy(64)
        bins = phy.detect_bins(phy.tag_symbol(9), threshold=0.5)
        assert bins.tolist() == [phy.bin_of_shift(9)]


class TestNetscatterSimulator:
    def test_capacity_bound(self):
        with pytest.raises(ValueError):
            NetscatterSimulator(n_tags=300, n_bins=256)

    def test_invalid_tags(self):
        with pytest.raises(ValueError):
            NetscatterSimulator(n_tags=0)

    def test_symbol_rate(self):
        sim = NetscatterSimulator(n_tags=4, n_bins=256, bandwidth_hz=1e6)
        assert sim.symbol_rate_hz == pytest.approx(1e6 / 256)

    def test_clean_channel_near_zero_ber(self):
        sim = NetscatterSimulator(n_tags=64, n_bins=256, snr_db=15.0)
        result = sim.run(100, np.random.default_rng(0))
        assert result.ber < 0.01

    def test_ber_grows_as_snr_falls(self):
        bers = []
        for snr in (12.0, 3.0):
            sim = NetscatterSimulator(n_tags=64, snr_db=snr)
            bers.append(sim.run(100, np.random.default_rng(1)).ber)
        assert bers[1] > bers[0]

    def test_near_far_hurts(self):
        flat = NetscatterSimulator(n_tags=64, snr_db=12.0)
        spread = NetscatterSimulator(n_tags=64, snr_db=12.0, amplitude_spread_db=24.0)
        ber_flat = flat.run(100, np.random.default_rng(2)).ber
        ber_spread = spread.run(100, np.random.default_rng(2)).ber
        assert ber_spread > ber_flat

    def test_rates(self):
        sim = NetscatterSimulator(n_tags=256, n_bins=256, bandwidth_hz=1e6, snr_db=15.0)
        result = sim.run(50, np.random.default_rng(3))
        # The Table-I operating point: ~1 Mbps aggregate raw OOK over
        # 256 tags, i.e. ~3.9 kbps per tag.
        assert result.aggregate_rate_bps == pytest.approx(1e6, rel=0.01)
        assert result.per_tag_rate_bps == pytest.approx(3906.25)
        assert result.goodput_bps() <= result.aggregate_rate_bps

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            NetscatterSimulator(n_tags=4).run(-1)

    def test_result_empty(self):
        r = NetscatterResult(n_tags=1, symbols=0, bit_errors=0, bits_total=0, symbol_rate_hz=1.0)
        assert r.ber == 0.0
