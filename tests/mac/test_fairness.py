"""Unit tests for repro.mac.fairness."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment, Point, Room
from repro.mac.fairness import RotatingGroupScheduler, ServiceLog, jain_index


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])


class TestServiceLog:
    def test_record_and_shares(self):
        log = ServiceLog(n_tags=3)
        log.record_epoch([0, 1], {0: 5, 1: 3})
        log.record_epoch([0, 2], {0: 4, 2: 2})
        shares = log.schedule_shares()
        assert shares.tolist() == [1.0, 0.5, 0.5]
        assert log.delivered[0] == 9

    def test_starved_detection(self):
        log = ServiceLog(n_tags=3)
        for _ in range(20):
            log.record_epoch([0, 1], {})
        assert log.starved() == [2]

    def test_fairness_of_even_schedule(self):
        log = ServiceLog(n_tags=2)
        log.record_epoch([0], {})
        log.record_epoch([1], {})
        assert log.fairness() == pytest.approx(1.0)

    def test_empty_log(self):
        log = ServiceLog(n_tags=4)
        assert log.schedule_shares().tolist() == [0.0] * 4
        assert log.fairness() == 1.0


def _deployment(n=8):
    dep = Deployment(room=Room(width=4, depth=4))
    rng = np.random.default_rng(0)
    for _ in range(n):
        dep.tags.append(Point(float(rng.uniform(-1.8, 1.8)), float(rng.uniform(-1.8, 1.8))))
    return dep


class TestRotatingGroupScheduler:
    def test_group_size_validation(self):
        dep = _deployment(4)
        with pytest.raises(ValueError):
            RotatingGroupScheduler(dep, group_size=0)
        with pytest.raises(ValueError):
            RotatingGroupScheduler(dep, group_size=5)

    def test_group_size_respected(self):
        sched = RotatingGroupScheduler(_deployment(8), group_size=3)
        rng = np.random.default_rng(1)
        for _ in range(10):
            group = sched.next_group(rng)
            assert len(group) == 3
            assert len(set(group)) == 3

    def test_no_starvation_long_run(self):
        """Every tag must be scheduled a meaningful share of epochs."""
        dep = _deployment(8)
        sched = RotatingGroupScheduler(dep, group_size=3)
        log = ServiceLog(n_tags=8)
        rng = np.random.default_rng(2)
        for _ in range(200):
            log.record_epoch(sched.next_group(rng), {})
        assert log.starved(min_share=0.1) == []
        assert log.fairness() > 0.9

    def test_aged_weighting_prefers_waiting_tags(self):
        """A tag skipped for many epochs becomes near-certain next."""
        dep = _deployment(4)
        sched = RotatingGroupScheduler(dep, group_size=1)
        rng = np.random.default_rng(3)
        groups = [sched.next_group(rng)[0] for _ in range(40)]
        gaps = {i: 0 for i in range(4)}
        last = {i: -1 for i in range(4)}
        for t, g in enumerate(groups):
            if last[g] >= 0:
                gaps[g] = max(gaps[g], t - last[g])
            last[g] = t
        # No tag waits absurdly long under aged weighting.
        assert max(gaps.values()) < 25

    def test_exclusion_respected_when_feasible(self):
        dep = Deployment(room=Room(width=4, depth=4))
        dep.tags = [Point(0, 0), Point(0.01, 0), Point(1, 1), Point(-1, -1)]
        sched = RotatingGroupScheduler(dep, group_size=2, exclusion_radius_m=0.1)
        rng = np.random.default_rng(4)
        for _ in range(30):
            group = sched.next_group(rng)
            if 0 in group and 1 in group:
                # Only allowed via the relaxation path when unavoidable;
                # with 4 tags and group 2, it is avoidable.
                pytest.fail("exclusion rule violated while feasible")
