"""Unit tests for repro.mac.power_control (Algorithm 1)."""

import pytest

from repro.codes import twonc_codes
from repro.mac.power_control import PowerController
from repro.tag.tag import Tag


def _tags(n):
    codes = twonc_codes(n, 32)
    return [Tag(i, codes[i]) for i in range(n)]


class TestPowerController:
    def test_requires_tags(self):
        with pytest.raises(ValueError):
            PowerController().run([], lambda tags, m: {})

    def test_converges_immediately_when_all_acked(self):
        tags = _tags(3)
        controller = PowerController(packets_per_epoch=10)

        def perfect(ts, m):
            return {t.tag_id: m for t in ts}

        result = controller.run(tags, perfect)
        assert result.converged
        assert result.epochs == 1
        assert result.final_fer == 0.0

    def test_cycle_bound(self):
        """A hopeless channel stops after 3 x n_tags epochs (+ arbitration)."""
        tags = _tags(2)
        controller = PowerController(packets_per_epoch=10, max_cycles_per_tag=3)
        calls = []

        def hopeless(ts, m):
            calls.append(1)
            return {t.tag_id: 0 for t in ts}

        result = controller.run(tags, hopeless)
        assert not result.converged
        # 6 search epochs plus at most 2 arbitration epochs.
        assert 6 <= result.epochs <= 8

    def test_failing_tag_steps_impedance(self):
        tags = _tags(2)
        start = [t.impedance_index for t in tags]
        seen_states = {t.tag_id: set() for t in tags}

        def track(ts, m):
            for t in ts:
                seen_states[t.tag_id].add(t.impedance_index)
            return {ts[0].tag_id: m, ts[1].tag_id: 0}  # tag 1 always fails

        PowerController(packets_per_epoch=10).run(tags, track)
        # The failing tag explored several states; the good one never moved.
        assert len(seen_states[1]) > 1
        assert seen_states[0] == {start[0]}

    def test_power_dependent_channel_converges(self):
        """ACKs arrive only at the strongest state -> controller finds it."""
        tags = _tags(2)
        top = len(tags[0].codebook) - 1

        def channel(ts, m):
            return {t.tag_id: (m if t.impedance_index == top else 0) for t in ts}

        result = PowerController(packets_per_epoch=10, fer_threshold=0.05).run(tags, channel)
        assert all(t.impedance_index == top for t in tags)
        assert result.final_fer == 0.0

    def test_best_configuration_restored(self):
        """After a non-converging run the best-seen config must be kept."""
        tags = _tags(1)
        history = []

        def flaky(ts, m):
            z = ts[0].impedance_index
            history.append(z)
            # State 2 gives 60% acks, everything else 10%.
            return {ts[0].tag_id: int(m * (0.6 if z == 2 else 0.1))}

        PowerController(packets_per_epoch=10).run(tags, flaky)
        assert tags[0].impedance_index == 2

    def test_fer_history_recorded(self):
        tags = _tags(2)
        controller = PowerController(packets_per_epoch=4)

        def half(ts, m):
            return {t.tag_id: m // 2 for t in ts}

        result = controller.run(tags, half)
        assert len(result.fer_history) == result.epochs
        assert all(0 <= f <= 1 for f in result.fer_history)
        assert len(result.impedance_history) == result.epochs

    def test_ack_ratio_floor_respected(self):
        """Tags above the 50% floor must not adjust (paper line 17)."""
        tags = _tags(2)
        z0 = [t.impedance_index for t in tags]

        def sixty_percent(ts, m):
            return {t.tag_id: int(0.6 * m) for t in ts}

        PowerController(packets_per_epoch=10, fer_threshold=0.05).run(tags, sixty_percent)
        # 60% acks > 50% floor: nobody moves, even though FER=0.4 > threshold.
        assert [t.impedance_index for t in tags] == z0
