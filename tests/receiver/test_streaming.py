"""Unit tests for repro.receiver.streaming and repro.sim.unslotted."""

import numpy as np
import pytest

from repro.channel.noise import NoiseModel
from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver import CbmaReceiver
from repro.receiver.streaming import DedupTable, StreamFrame, StreamingReceiver
from repro.sim.unslotted import UnslottedScenario, simulate_unslotted
from repro.tag import FrameFormat, Tag

SPC = 2


@pytest.fixture
def stack():
    codes = twonc_codes(2, 32)
    fmt = FrameFormat()
    tags = [Tag(i, codes[i], fmt=fmt) for i in range(2)]
    rx = CbmaReceiver({i: codes[i] for i in range(2)}, fmt=fmt, samples_per_chip=SPC)
    stream = StreamingReceiver(rx, max_frame_bits=fmt.frame_bits(12))
    return codes, fmt, tags, rx, stream


def _place(tag, payload, start, total, amp=1.0):
    sig = ook_baseband(tag.chip_stream(payload, SPC), amplitude=amp)
    return fractional_delay(sig, start, total_length=total)


class TestStreamingReceiver:
    def test_validation(self, stack):
        codes, fmt, tags, rx, _ = stack
        with pytest.raises(ValueError):
            StreamingReceiver(rx, max_frame_bits=0)
        with pytest.raises(ValueError):
            StreamingReceiver(rx, max_frame_bits=100, window_frames=1.0)

    def test_two_sequential_frames_same_tag(self, stack):
        codes, fmt, tags, rx, stream = stack
        rng = np.random.default_rng(0)
        frame_len = stream.hop_samples
        total = 5 * frame_len
        buf = 1e-6 * (rng.normal(size=total) + 1j * rng.normal(size=total))
        buf = buf + _place(tags[0], b"frame no 1", 100, total)
        buf = buf + _place(tags[0], b"frame no 2", 100 + 2 * frame_len, total)
        frames = stream.process_stream(buf)
        payloads = [f.payload for f in frames if f.user_id == 0]
        assert b"frame no 1" in payloads
        assert b"frame no 2" in payloads

    def test_no_duplicate_decodes_across_windows(self, stack):
        codes, fmt, tags, rx, stream = stack
        rng = np.random.default_rng(1)
        total = 4 * stream.hop_samples
        buf = 1e-6 * (rng.normal(size=total) + 1j * rng.normal(size=total))
        # Frame near a window boundary: visible from two windows.
        buf = buf + _place(tags[0], b"boundaryfr", stream.hop_samples - 500, total)
        frames = stream.process_stream(buf)
        hits = [f for f in frames if f.payload == b"boundaryfr"]
        assert len(hits) == 1

    def test_partial_overlap_between_tags(self, stack):
        codes, fmt, tags, rx, stream = stack
        rng = np.random.default_rng(2)
        total = 4 * stream.hop_samples
        buf = 1e-6 * (rng.normal(size=total) + 1j * rng.normal(size=total))
        start0 = 200
        start1 = start0 + stream.hop_samples // 3  # ~1/3-frame overlap
        buf = buf + _place(tags[0], b"overlap t0", start0, total, amp=np.exp(0.5j))
        buf = buf + _place(tags[1], b"overlap t1", start1, total, amp=np.exp(2.5j))
        frames = stream.process_stream(buf)
        got = {(f.user_id, f.payload) for f in frames}
        assert (0, b"overlap t0") in got
        assert (1, b"overlap t1") in got

    def test_start_positions_roughly_correct(self, stack):
        codes, fmt, tags, rx, stream = stack
        rng = np.random.default_rng(3)
        total = 3 * stream.hop_samples
        buf = 1e-6 * (rng.normal(size=total) + 1j * rng.normal(size=total))
        buf = buf + _place(tags[1], b"where am i", 12345, total)
        frames = stream.process_stream(buf)
        hit = [f for f in frames if f.payload == b"where am i"][0]
        assert abs(hit.start_sample - 12345) < 8

    def test_empty_stream(self, stack):
        _, _, _, _, stream = stack
        assert stream.process_stream(np.zeros(100, dtype=complex)) == []

    def test_short_capture_tail_frame_decoded(self, stack):
        """A capture much shorter than one window still decodes its
        frame -- the old walk's end-of-buffer guard skipped it."""
        codes, fmt, tags, rx, stream = stack
        rng = np.random.default_rng(5)
        sig = ook_baseband(tags[0].chip_stream(b"hi", SPC))
        total = sig.size + 200
        assert total < stream.window_samples // 4
        buf = 1e-6 * (rng.normal(size=total) + 1j * rng.normal(size=total))
        buf = buf + _place(tags[0], b"hi", 100, total)
        frames = stream.process_stream(buf)
        assert any(f.user_id == 0 and f.payload == b"hi" for f in frames)


class TestDedupTable:
    def test_seen_within_tolerance_only(self):
        t = DedupTable(tolerance=100)
        assert not t.seen(0, b"a", 1000)
        assert t.seen(0, b"a", 1050)  # same frame through the next window
        assert not t.seen(0, b"a", 1200)  # a genuinely new frame
        assert not t.seen(1, b"a", 1000)  # different user

    def test_evictions_and_peak_tracked(self):
        t = DedupTable(tolerance=10)
        for i in range(5):
            t.seen(0, bytes([i]), i * 100)
        assert t.peak_size == 5
        assert t.evict_before(250) == 3
        assert len(t) == 2
        assert t.evictions == 3

    def test_user_active_since(self):
        t = DedupTable(tolerance=10)
        t.seen(0, b"x", 500)
        assert t.user_active_since(0, 400)
        assert not t.user_active_since(0, 500)
        assert not t.user_active_since(1, 0)

    def test_records_round_trip(self):
        t = DedupTable(tolerance=10)
        t.seen(0, b"x", 500)
        t.seen(1, b"y", 700)
        back = DedupTable.from_records(10, t.to_records(), evictions=3, peak_size=4)
        assert back.entries == t.entries
        assert back.evictions == 3
        assert back.peak_size == 4

    def test_long_stream_memory_stays_flat(self, stack, monkeypatch):
        """1000 frames through the walk: the bounded dedup table must
        evict behind the walk instead of growing without bound."""
        codes, fmt, tags, rx, _ = stack
        stream = StreamingReceiver(rx, max_frame_bits=4)
        decoded = {"n": 0}

        def fake_decode(window, pos, dedup):
            decoded["n"] += 1
            payload = decoded["n"].to_bytes(4, "big")
            if dedup.seen(0, payload, pos):
                return [], None
            return [StreamFrame(user_id=0, payload=payload, start_sample=pos)], None

        monkeypatch.setattr(stream, "window_is_live", lambda window: True)
        monkeypatch.setattr(stream, "decode_window", fake_decode)
        frames = stream.process_stream(
            np.zeros(1000 * stream.hop_samples, dtype=complex)
        )
        assert len(frames) == 1000
        assert stream.last_dedup.peak_size <= 4
        assert len(stream.last_dedup) <= 4
        assert stream.last_dedup.evictions >= 990


class TestUnslotted:
    def _scenario(self, tags, amp, rate, duration_s=0.3, noise=None):
        return UnslottedScenario(
            tags=tags,
            amplitudes=[amp] * len(tags),
            rate_hz=rate,
            duration_s=duration_s,
            noise=noise or NoiseModel(),
        )

    def test_validation(self, stack):
        codes, fmt, tags, rx, stream = stack
        with pytest.raises(ValueError):
            UnslottedScenario(tags=tags, amplitudes=[1.0], rate_hz=1.0, duration_s=1.0)
        with pytest.raises(ValueError):
            UnslottedScenario(tags=tags, amplitudes=[1, 1], rate_hz=-1.0, duration_s=1.0)

    def test_zero_rate_nothing_offered(self, stack):
        codes, fmt, tags, rx, stream = stack
        noise = NoiseModel()
        scn = self._scenario(tags, 1e-6, 0.0, noise=noise)
        result = simulate_unslotted(scn, stream, np.random.default_rng(0))
        assert result.offered == 0
        assert result.delivery_ratio == 1.0

    def test_light_load_delivers(self, stack):
        codes, fmt, tags, rx, stream = stack
        noise = NoiseModel()
        amp = np.sqrt(noise.power_w * 10 ** (10 / 10)) / 0.432
        scn = self._scenario(tags, amp, rate=8.0, duration_s=0.4, noise=noise)
        result = simulate_unslotted(scn, stream, np.random.default_rng(1))
        assert result.offered >= 2
        assert result.delivery_ratio > 0.6

    def test_accounting_consistent(self, stack):
        codes, fmt, tags, rx, stream = stack
        noise = NoiseModel()
        amp = np.sqrt(noise.power_w * 10 ** (10 / 10)) / 0.432
        scn = self._scenario(tags, amp, rate=15.0, duration_s=0.4, noise=noise)
        result = simulate_unslotted(scn, stream, np.random.default_rng(2))
        assert result.delivered <= result.offered
        assert sum(result.per_tag_offered.values()) == result.offered
        assert sum(result.per_tag_delivered.values()) == result.delivered
