"""Unit tests for repro.receiver.session.

The state machine is exercised against a scripted stand-in for
:class:`StreamingReceiver` -- each window's outcome ("dark", "ok",
"fail") is declared up front -- so every transition is driven
deterministically without paying for (or depending on) the PHY.
End-to-end session behaviour over real waveforms is covered by the
chaos-soak tests in ``tests/sim/test_soak.py``.
"""

import itertools
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs import Tracer
from repro.receiver.session import (
    CHECKPOINT_FORMAT,
    HealthState,
    SessionConfig,
    SessionSupervisor,
)
from repro.receiver.streaming import DedupTable, StreamFrame

HOP = 1_000
WINDOW = 2_000
FRAME = 1_000


class ScriptedStream:
    """Stand-in for StreamingReceiver with scripted per-window outcomes.

    - ``dark``: pre-gate says silent;
    - ``ok``:   live, a fresh frame from user 0 decodes;
    - ``fail``: live, user 1 detects strongly but nothing decodes
      (the drift signature; user 1 so the supervisor's residue
      suppression never mistakes it for a just-decoded frame's image).

    Outcomes past the end of the script are ``dark``.
    """

    def __init__(self, outcomes=()):
        self.outcomes = list(outcomes)
        self.hop_samples = HOP
        self.window_samples = WINDOW
        self.frame_samples = FRAME
        self.max_frame_bits = 8
        self.receiver = SimpleNamespace(codes={0: None, 1: None})
        self.windows_seen = []  # (kind, window_size) per processed window
        self._n = 0
        self._kind = "dark"

    def make_dedup(self):
        return DedupTable(tolerance=self.frame_samples // 2)

    def window_is_live(self, window):
        self._kind = self.outcomes[self._n] if self._n < len(self.outcomes) else "dark"
        self.windows_seen.append((self._kind, window.size))
        self._n += 1
        return self._kind != "dark"

    def decode_window(self, window, pos, dedup):
        if self._kind == "fail":
            report = SimpleNamespace(
                frames=[],
                detections=[SimpleNamespace(user_id=1, score=0.9, offset=0)],
            )
            return [], report
        payload = self._n.to_bytes(4, "big")
        report = SimpleNamespace(
            frames=[SimpleNamespace(success=True)],
            detections=[SimpleNamespace(user_id=0, score=0.9, offset=10)],
        )
        frames = []
        if not dedup.seen(0, payload, pos + 10):
            frames.append(StreamFrame(user_id=0, payload=payload, start_sample=pos + 10))
        return frames, report


def drive(outcomes, config=None, extra_hops=1, **kwargs):
    """Feed exactly ``len(outcomes) + extra_hops - 1`` windows' worth."""
    stream = ScriptedStream(outcomes)
    session = SessionSupervisor(stream, config=config, **kwargs)
    n = len(outcomes) + extra_hops
    emitted = session.feed(np.zeros(n * HOP, dtype=np.complex128))
    return stream, session, emitted


class TestSessionConfig:
    def test_defaults_valid(self):
        SessionConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_backlog_windows": 0},
            {"max_windows_per_feed": 0},
            {"attempt_score": 0.0},
            {"attempt_score": 1.5},
            {"health_window": 0},
            {"min_attempts": 0},
            {"degrade_failure_rate": 0.2, "recover_failure_rate": 0.4},
            {"degrade_failure_rate": 1.4},
            {"resync_after": 0},
            {"fail_after_resyncs": 0},
            {"resync_widen_factor": 0},
            {"watchdog_budget_s": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SessionConfig(**kwargs)


class TestHealthMachine:
    def test_silence_is_healthy(self):
        """Dark windows are not decode attempts: a silent stream must
        never degrade (the noise-spiral regression)."""
        _, session, emitted = drive(["dark"] * 20)
        assert session.state is HealthState.HEALTHY
        assert session.health_history == [(0, "healthy")]
        assert emitted == []
        assert session.stats["windows_skipped"] == session.stats["windows"]
        assert session.stats["windows_live"] == 0

    def test_steady_decodes_stay_healthy(self):
        _, session, emitted = drive(["ok"] * 10)
        assert session.state is HealthState.HEALTHY
        assert session.stats["frames"] == 10
        assert len(emitted) + session.pending_frames == 10

    def test_degrade_and_recover_on_failure_rate(self):
        # resync_after pushed out of the way to isolate the rate logic.
        cfg = SessionConfig(resync_after=50)
        outcomes = ["ok", "ok", "fail", "fail"] + ["ok"] * 4
        _, session, _ = drive(outcomes, config=cfg)
        # 4 attempts / 2 failures -> rate 0.5 degrades; 8 attempts /
        # 2 failures -> rate 0.25 heals.
        assert [s for _, s in session.health_history] == [
            "healthy",
            "degraded",
            "healthy",
        ]
        assert session.health_history[1][0] == 4
        assert session.health_history[2][0] == 8

    def test_nodecode_streak_triggers_widened_resync(self):
        # Enough prior successes that the failure *rate* stays below the
        # degrade threshold -- the streak, not the rate, must trigger.
        outcomes = ["ok"] * 5 + ["fail"] * 3 + ["ok"]
        stream, session, _ = drive(outcomes, extra_hops=4)
        assert session.state is HealthState.HEALTHY
        assert session.stats["resyncs"] == 1
        assert [s for _, s in session.health_history] == ["healthy", "resync", "healthy"]
        # The acquisition window after entering RESYNC is widened.
        assert stream.windows_seen[7][1] == WINDOW  # streak completes here
        assert stream.windows_seen[8][1] == WINDOW * SessionConfig().resync_widen_factor

    def test_resync_exhaustion_fails_terminally(self):
        outcomes = ["ok"] + ["fail"] * 6  # 3 to enter RESYNC, 3 failed acquisitions
        _, session, _ = drive(outcomes, config=None, extra_hops=8)
        assert session.state is HealthState.FAILED
        assert [s for _, s in session.health_history] == ["healthy", "resync", "failed"]
        # FAILED is terminal: everything fed afterwards is shed, not decoded.
        shed_before = session.stats["windows_shed"]
        assert session.feed(np.zeros(5 * HOP, dtype=np.complex128)) == []
        assert session.stats["windows_shed"] > shed_before

    def test_watchdog_degrades_without_touching_decode(self):
        ticks = itertools.count()
        clock = lambda: float(next(ticks)) * 10.0  # 10 s per clock() call
        _, session, emitted = drive(["ok"] * 6, clock=clock)
        assert session.state is HealthState.DEGRADED
        assert session.stats["watchdog_trips"] >= 1
        # Decode output is unaffected -- the watchdog only moves health.
        assert session.stats["frames"] == 6
        assert all(s in ("healthy", "degraded") for _, s in session.health_history)


class TestIngestion:
    def test_backlog_shedding_counts_and_bounds(self):
        cfg = SessionConfig(max_windows_per_feed=1, max_backlog_windows=2)
        stream = ScriptedStream(["ok"] * 10)
        session = SessionSupervisor(stream, config=cfg)
        session.feed(np.zeros(10 * HOP, dtype=np.complex128))
        assert session.stats["windows"] == 1
        assert session.stats["windows_shed"] > 0
        assert session.backlog_windows <= 2
        # Every hop of walk advance is accounted processed-or-shed.
        walked = session.stats["windows"] + session.stats["windows_shed"]
        assert walked * HOP == session.position

    def test_emission_order_is_non_decreasing(self):
        _, session, emitted = drive(["ok"] * 8)
        emitted += session.finish()
        starts = [f.start_sample for f in emitted]
        assert starts == sorted(starts)
        assert len(emitted) == 8

    def test_corrupt_chunk_quarantined_not_fatal(self):
        stream = ScriptedStream(["ok"] * 2)
        session = SessionSupervisor(stream)
        bad = np.zeros(3 * HOP, dtype=np.complex128)
        bad[5] = np.nan
        session.feed(bad)
        assert session.stats["quarantined"] >= 1
        assert session.state is HealthState.HEALTHY

    def test_feed_after_finish_rejected(self):
        _, session, _ = drive(["ok"])
        session.finish()
        with pytest.raises(RuntimeError):
            session.feed(np.zeros(HOP, dtype=np.complex128))
        assert session.finish() == []  # idempotent

    def test_session_counters_reach_tracer(self):
        tracer = Tracer()
        _, session, _ = drive(["ok", "dark", "fail"], tracer=tracer)
        assert tracer.counters["session.windows"] == session.stats["windows"]
        assert tracer.counters["session.windows_live"] == 2
        assert tracer.counters["session.windows_skipped"] >= 1
        assert tracer.counters["session.frames"] == session.stats["frames"]


class TestCheckpoint:
    def _run_and_checkpoint(self, tmp_path, outcomes=("ok", "fail", "ok", "ok")):
        stream, session, emitted = drive(list(outcomes))
        path = session.checkpoint(tmp_path / "session.jsonl")
        return session, emitted, path

    def test_roundtrip_restores_full_state(self, tmp_path):
        session, _, path = self._run_and_checkpoint(tmp_path)
        restored = SessionSupervisor.restore(path, ScriptedStream())
        assert restored.position == session.position
        assert restored.samples_fed == session.samples_fed
        assert restored.state is session.state
        assert restored.stats == session.stats
        assert restored.health_history == session.health_history
        assert restored._recent == session._recent
        assert restored.dedup.to_records() == session.dedup.to_records()
        assert restored.dedup.peak_size == session.dedup.peak_size
        assert [f.payload for f in restored._pending] == [
            f.payload for f in session._pending
        ]

    def test_checkpoint_is_atomic_jsonl_with_header(self, tmp_path):
        _, _, path = self._run_and_checkpoint(tmp_path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["format"] == CHECKPOINT_FORMAT
        assert not path.with_name(path.name + ".tmp").exists()

    def _rewrite_header(self, path, **overrides):
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        lines[0].update(overrides)
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "state"}) + "\n")
        with pytest.raises(ValueError, match="no header"):
            SessionSupervisor.restore(path, ScriptedStream())

    def test_wrong_format_rejected(self, tmp_path):
        _, _, path = self._run_and_checkpoint(tmp_path)
        self._rewrite_header(path, format="cbma-sweep")
        with pytest.raises(ValueError, match="not a session checkpoint"):
            SessionSupervisor.restore(path, ScriptedStream())

    def test_wrong_version_rejected(self, tmp_path):
        _, _, path = self._run_and_checkpoint(tmp_path)
        self._rewrite_header(path, version=99)
        with pytest.raises(ValueError, match="version"):
            SessionSupervisor.restore(path, ScriptedStream())

    def test_geometry_mismatch_rejected(self, tmp_path):
        _, _, path = self._run_and_checkpoint(tmp_path)
        other = ScriptedStream()
        other.hop_samples = HOP // 2
        with pytest.raises(ValueError, match="geometry"):
            SessionSupervisor.restore(path, other)

    def test_duplicate_state_record_rejected(self, tmp_path):
        _, _, path = self._run_and_checkpoint(tmp_path)
        lines = path.read_text().splitlines()
        state = next(l for l in lines if json.loads(l)["type"] == "state")
        path.write_text("\n".join(lines + [state]) + "\n")
        with pytest.raises(ValueError, match="state records"):
            SessionSupervisor.restore(path, ScriptedStream())
