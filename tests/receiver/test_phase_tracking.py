"""Unit tests for repro.receiver.phase_tracking and the CFO impairment."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver import CbmaReceiver, PhaseTrackingReceiver
from repro.sim.collision import CollisionScenario, simulate_round
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.tag import FrameFormat, Tag, TagOscillator

SPC = 2


def _buffer_with_cfo(tag, payload, cfo_hz, sample_rate, amp=1.0, seed=0):
    rng = np.random.default_rng(seed)
    sig = ook_baseband(tag.chip_stream(payload, SPC), amplitude=amp)
    sig = fractional_delay(sig, 128)
    n = np.arange(sig.size)
    sig = sig * np.exp(2j * np.pi * cfo_hz * n / sample_rate)
    return sig + 1e-6 * (rng.normal(size=sig.size) + 1j * rng.normal(size=sig.size))


class TestPhaseTrackingReceiver:
    def setup_method(self):
        self.codes = twonc_codes(2, 64)
        self.fmt = FrameFormat()
        self.tag = Tag(0, self.codes[0], fmt=self.fmt)
        self.plain = CbmaReceiver(
            {i: self.codes[i] for i in range(2)}, fmt=self.fmt, samples_per_chip=SPC
        )
        self.tracking = PhaseTrackingReceiver(
            {i: self.codes[i] for i in range(2)}, fmt=self.fmt, samples_per_chip=SPC
        )

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            PhaseTrackingReceiver({0: self.codes[0]}, alpha=0.0)

    def test_agrees_with_plain_without_cfo(self):
        buf = _buffer_with_cfo(self.tag, b"no rotation here", 0.0, 2e6)
        assert (
            self.tracking.process(buf).decoded_payloads()
            == self.plain.process(buf).decoded_payloads()
        )

    def test_survives_cfo_that_kills_plain(self):
        """One full constellation turn mid-frame defeats a static
        channel estimate; the tracking loop follows it."""
        payload = b"rotating frame!!"
        buf = _buffer_with_cfo(self.tag, payload, 150.0, 2e6)
        assert self.plain.process(buf).decoded_payloads().get(0) != payload
        assert self.tracking.process(buf).decoded_payloads().get(0) == payload

    def test_decoders_restored_after_process(self):
        buf = _buffer_with_cfo(self.tag, b"restore check", 50.0, 2e6)
        before = dict(self.tracking._decoders)
        self.tracking.process(buf)
        assert self.tracking._decoders == before


class TestCfoImpairment:
    def test_scenario_validates_arity(self):
        codes = twonc_codes(2, 32)
        tags = [Tag(i, codes[i]) for i in range(2)]
        with pytest.raises(ValueError):
            CollisionScenario(tags=tags, amplitudes=[1e-6, 1e-6], cfo_hz=[100.0])

    def test_zero_cfo_bit_identical(self):
        codes = twonc_codes(1, 32)
        tag = Tag(0, codes[0], oscillator=TagOscillator(offset_chips=1.5))
        a = CollisionScenario(tags=[tag], amplitudes=[1e-6], cfo_hz=None)
        b = CollisionScenario(tags=[tag], amplitudes=[1e-6], cfo_hz=[0.0])
        iq_a, _ = simulate_round(a, {0: b"x"}, np.random.default_rng(1))
        iq_b, _ = simulate_round(b, {0: b"x"}, np.random.default_rng(1))
        assert np.array_equal(iq_a, iq_b)

    def test_network_config_plumbs_cfo(self):
        cfg = CbmaConfig(n_tags=2, seed=3, cfo_hz_sigma=200.0)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        fer_cfo = net.run_rounds(10).fer
        cfg0 = CbmaConfig(n_tags=2, seed=3)
        net0 = CbmaNetwork(cfg0, Deployment.linear(2, tag_to_rx=1.0))
        fer_clean = net0.run_rounds(10).fer
        assert fer_cfo > fer_clean

    def test_tracking_receiver_in_network(self):
        cfg = CbmaConfig(n_tags=2, seed=3, cfo_hz_sigma=200.0)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        net.receiver = PhaseTrackingReceiver(
            net.receiver.codes, fmt=net.fmt, samples_per_chip=2
        )
        assert net.run_rounds(10).fer < 0.3
