"""Unit tests for repro.receiver.sic (successive interference cancellation)."""

import numpy as np
import pytest

from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver import CbmaReceiver, SicReceiver
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag


SPC = 2


def _build(tags, payloads, amps, offsets, noise, rng):
    streams = []
    for tag, amp, off in zip(tags, amps, offsets):
        if tag.tag_id not in payloads:
            continue
        sig = ook_baseband(tag.chip_stream(payloads[tag.tag_id], SPC), amplitude=amp)
        streams.append(fractional_delay(sig, 128 + off))
    n = max(s.size for s in streams) + 64
    total = np.zeros(n, dtype=complex)
    for s in streams:
        total[: s.size] += s
    return total + noise * (rng.normal(size=n) + 1j * rng.normal(size=n))


@pytest.fixture
def setup():
    codes = twonc_codes(3, 64)
    fmt = FrameFormat()
    tags = [Tag(i, codes[i], fmt=fmt) for i in range(3)]
    sic = SicReceiver({i: codes[i] for i in range(3)}, fmt=fmt, samples_per_chip=SPC)
    plain = CbmaReceiver({i: codes[i] for i in range(3)}, fmt=fmt, samples_per_chip=SPC)
    return codes, fmt, tags, sic, plain


class TestSicReceiver:
    def test_invalid_passes(self):
        codes = twonc_codes(1, 32)
        with pytest.raises(ValueError):
            SicReceiver({0: codes[0]}, max_passes=0)

    def test_single_tag_same_as_plain(self, setup):
        codes, fmt, tags, sic, plain = setup
        rng = np.random.default_rng(0)
        payloads = {0: b"single tag here!"}
        buf = _build(tags, payloads, [1.0, 0, 0], [3.3, 0, 0], 0.01, rng)
        assert sic.process(buf).decoded_payloads() == plain.process(buf).decoded_payloads()

    def test_recovers_near_far_victim(self, setup):
        """SIC must decode a ~18 dB weaker tag that the plain receiver loses."""
        codes, fmt, tags, sic, plain = setup
        rng = np.random.default_rng(1)
        wins_sic = wins_plain = 0
        for trial in range(10):
            payloads = {
                0: bytes(rng.integers(0, 256, 16, dtype=np.uint8)),
                1: bytes(rng.integers(0, 256, 16, dtype=np.uint8)),
            }
            amps = [
                1.0 * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                0.12 * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                0.0,
            ]
            offs = [rng.uniform(0, 16), rng.uniform(0, 16), 0]
            buf = _build(tags, payloads, amps, offs, 0.01, rng)
            wins_plain += plain.process(buf).decoded_payloads().get(1) == payloads[1]
            wins_sic += sic.process(buf).decoded_payloads().get(1) == payloads[1]
        assert wins_sic >= 8
        assert wins_sic > wins_plain

    def test_no_false_acks_for_silent_tags(self, setup):
        codes, fmt, tags, sic, plain = setup
        rng = np.random.default_rng(2)
        payloads = {0: bytes(rng.integers(0, 256, 16, dtype=np.uint8))}
        buf = _build(tags, payloads, [1.0, 0, 0], [2.2, 0, 0], 0.01, rng)
        report = sic.process(buf)
        assert set(report.ack.decoded_ids) <= {0}

    def test_three_tag_staircase(self, setup):
        """Three tags at 0 / -10 / -20 dB: SIC peels them in order."""
        codes, fmt, tags, sic, plain = setup
        rng = np.random.default_rng(3)
        payloads = {
            i: bytes(rng.integers(0, 256, 16, dtype=np.uint8)) for i in range(3)
        }
        amps = [
            1.0 * np.exp(1j * 0.5),
            0.32 * np.exp(1j * 2.0),
            0.1 * np.exp(1j * 4.0),
        ]
        offs = [1.0, 6.5, 12.3]
        buf = _build(tags, payloads, amps, offs, 0.005, rng)
        decoded = sic.process(buf).decoded_payloads()
        assert decoded == payloads

    def test_noise_only_no_successes(self, setup):
        codes, fmt, tags, sic, plain = setup
        rng = np.random.default_rng(4)
        noise = 0.01 * (rng.normal(size=8000) + 1j * rng.normal(size=8000))
        report = sic.process(noise)
        assert all(not f.success for f in report.frames)
