"""Unit tests for repro.receiver.receiver and repro.receiver.ack."""

import numpy as np
import pytest

from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver.ack import AckMessage
from repro.receiver.receiver import CbmaReceiver
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag


class TestAckMessage:
    def test_for_ids(self):
        ack = AckMessage.for_ids([3, 1, 1])
        assert ack.acknowledges(1)
        assert ack.acknowledges(3)
        assert not ack.acknowledges(2)
        assert len(ack) == 2

    def test_empty_default(self):
        assert len(AckMessage()) == 0

    def test_frozen(self):
        ack = AckMessage.for_ids([1])
        with pytest.raises(AttributeError):
            ack.decoded_ids = frozenset()


def _collision_buffer(tags, payloads, amps, offsets, spc, noise=1e-6, lead=128, seed=0):
    rng = np.random.default_rng(seed)
    streams = []
    for tag, amp, off in zip(tags, amps, offsets):
        if tag.tag_id not in payloads:
            continue
        sig = ook_baseband(tag.chip_stream(payloads[tag.tag_id], spc), amplitude=amp)
        streams.append(fractional_delay(sig, lead + off))
    n = max(s.size for s in streams) + 64
    total = np.zeros(n, dtype=complex)
    for s in streams:
        total[: s.size] += s
    total += noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    return total


class TestCbmaReceiver:
    def setup_method(self):
        self.spc = 2
        self.codes = twonc_codes(3, 32)
        self.fmt = FrameFormat()
        self.tags = [Tag(i, self.codes[i], fmt=self.fmt) for i in range(3)]
        self.rx = CbmaReceiver(
            {i: self.codes[i] for i in range(3)}, fmt=self.fmt, samples_per_chip=self.spc
        )

    def test_single_tag_roundtrip(self):
        payloads = {0: b"only tag zero"}
        buf = _collision_buffer(self.tags, payloads, [1.0, 1.0, 1.0], [0, 0, 0], self.spc)
        report = self.rx.process(buf)
        assert report.decoded_payloads() == payloads
        assert report.ack.acknowledges(0)

    def test_three_tag_collision(self):
        payloads = {0: b"tag zero data!", 1: b"tag one data!!", 2: b"tag two data!!"}
        amps = [1.0 * np.exp(1j * 0.3), 0.9 * np.exp(1j * 2.0), 1.1 * np.exp(1j * 4.0)]
        buf = _collision_buffer(self.tags, payloads, amps, [0.0, 3.3, 7.7], self.spc)
        report = self.rx.process(buf)
        assert report.decoded_payloads() == payloads
        assert set(report.ack.decoded_ids) == {0, 1, 2}

    def test_no_signal_nothing_acked(self):
        """Noise may trip the 3 dB energy gate and even marginal
        correlations, but no frame may decode and nothing is ACKed."""
        rng = np.random.default_rng(0)
        noise = 1e-6 * (rng.normal(size=8000) + 1j * rng.normal(size=8000))
        report = self.rx.process(noise)
        assert all(not f.success for f in report.frames)
        assert len(report.ack) == 0

    def test_skip_energy_gate(self):
        rng = np.random.default_rng(0)
        noise = 1e-6 * (rng.normal(size=8000) + 1j * rng.normal(size=8000))
        report = self.rx.process(noise, skip_energy_gate=True)
        # User detector ran (possibly empty result), no crash.
        assert report.ack is not None

    def test_ghost_suppression(self):
        """One very strong tag must not be decoded under other codes."""
        payloads = {0: b"dominant tag payload"}
        buf = _collision_buffer(self.tags, payloads, [5.0, 1, 1], [0, 0, 0], self.spc)
        report = self.rx.process(buf)
        decoded = report.decoded_payloads()
        assert list(decoded) == [0]
        ghosts = [f for f in report.frames if f.reason == "ghost"]
        # Any duplicate decodes were converted to ghosts, never ACKed.
        for g in ghosts:
            assert not report.ack.acknowledges(g.user_id)

    def test_frame_for_missing_user(self):
        payloads = {0: b"zzz"}
        buf = _collision_buffer(self.tags, payloads, [1, 1, 1], [0, 0, 0], self.spc)
        report = self.rx.process(buf)
        assert report.frame_for(99) is None

    def test_near_far_weak_tag_suffers(self):
        """A 20 dB weaker tag should fail while the strong one succeeds."""
        payloads = {0: b"strong tag here", 1: b"weak tag here!!"}
        buf = _collision_buffer(
            self.tags, payloads, [1.0, 0.1, 1.0], [0.0, 4.4, 0.0], self.spc, noise=3e-3
        )
        report = self.rx.process(buf)
        decoded = report.decoded_payloads()
        assert 0 in decoded
        assert decoded.get(1) != payloads[1] or 1 not in decoded
