"""Unit tests for repro.receiver.diversity (MRC) and the diversity
collision simulator."""

import numpy as np
import pytest

from repro.channel.fading import FadingModel
from repro.channel.noise import NoiseModel
from repro.codes import twonc_codes
from repro.receiver import CbmaReceiver
from repro.receiver.diversity import DiversityReceiver
from repro.sim.collision import CollisionScenario, simulate_diversity_round
from repro.tag import Tag, TagOscillator

SPC = 2


def _scenario(n_tags, amp, rng, codes):
    tags = [
        Tag(i, codes[i], oscillator=TagOscillator(offset_chips=float(rng.uniform(0, 8))))
        for i in range(n_tags)
    ]
    return CollisionScenario(
        tags=tags, amplitudes=[amp] * n_tags, noise=NoiseModel(), samples_per_chip=SPC
    )


class TestSimulateDiversityRound:
    def test_branch_count_and_length(self):
        codes = twonc_codes(2, 32)
        rng = np.random.default_rng(0)
        scen = _scenario(2, 1e-6, rng, codes)
        gains = np.ones((3, 2), dtype=complex)
        branches, truth = simulate_diversity_round(scen, {0: b"a", 1: b"b"}, gains, rng)
        assert len(branches) == 3
        assert len({b.size for b in branches}) == 1
        assert truth.n_samples == branches[0].size

    def test_gain_shape_validated(self):
        codes = twonc_codes(2, 32)
        rng = np.random.default_rng(0)
        scen = _scenario(2, 1e-6, rng, codes)
        with pytest.raises(ValueError):
            simulate_diversity_round(scen, {0: b"a"}, np.ones((2, 3)), rng)

    def test_branches_differ_with_different_gains(self):
        codes = twonc_codes(1, 32)
        rng = np.random.default_rng(1)
        scen = _scenario(1, 1e-6, rng, codes)
        gains = np.array([[1.0], [1j]])
        branches, _ = simulate_diversity_round(scen, {0: b"x"}, gains, rng)
        assert not np.allclose(branches[0], branches[1])


class TestDiversityReceiver:
    def test_invalid_antennas(self):
        codes = twonc_codes(1, 32)
        with pytest.raises(ValueError):
            DiversityReceiver({0: codes[0]}, n_antennas=0)

    def test_branch_count_enforced(self):
        codes = twonc_codes(1, 32)
        rx = DiversityReceiver({0: codes[0]}, samples_per_chip=SPC, n_antennas=2)
        with pytest.raises(ValueError):
            rx.process_branches([np.zeros(100, dtype=complex)])

    def test_branch_length_enforced(self):
        codes = twonc_codes(1, 32)
        rx = DiversityReceiver({0: codes[0]}, samples_per_chip=SPC, n_antennas=2)
        with pytest.raises(ValueError):
            rx.process_branches(
                [np.zeros(100, dtype=complex), np.zeros(90, dtype=complex)]
            )

    def test_clean_decode_two_branches(self):
        codes = twonc_codes(2, 64)
        rng = np.random.default_rng(2)
        noise = NoiseModel()
        amp = np.sqrt(noise.power_w * 10 ** (5 / 10)) / 0.432
        scen = _scenario(2, amp, rng, codes)
        payloads = {0: b"branch test 0!", 1: b"branch test 1!"}
        gains = np.array([[1.0, 0.9], [0.7j, 1.1j]])
        branches, _ = simulate_diversity_round(scen, payloads, gains, rng)
        rx = DiversityReceiver(
            {i: codes[i] for i in range(2)}, samples_per_chip=SPC, n_antennas=2
        )
        assert rx.process_branches(branches).decoded_payloads() == payloads

    def test_diversity_gain_under_fading(self):
        """2-branch MRC must clearly beat one antenna in deep fading."""
        codes = twonc_codes(3, 64)
        rng = np.random.default_rng(8)
        noise = NoiseModel()
        amp = np.sqrt(noise.power_w * 10 ** (-8 / 10)) / 0.432
        fad = FadingModel(k_factor=3.0, shadowing_sigma_db=0.0)
        rx1 = CbmaReceiver({i: codes[i] for i in range(3)}, samples_per_chip=SPC)
        rx2 = DiversityReceiver(
            {i: codes[i] for i in range(3)}, samples_per_chip=SPC, n_antennas=2
        )
        ok1 = ok2 = tot = 0
        for _ in range(15):
            scen = _scenario(3, amp, rng, codes)
            payloads = {
                i: bytes(rng.integers(0, 256, 16, dtype=np.uint8)) for i in range(3)
            }
            gains = np.array(
                [[fad.sample_gain(rng) for _ in range(3)] for _ in range(2)]
            )
            branches, _ = simulate_diversity_round(scen, payloads, gains, rng)
            d1 = rx1.process(branches[0]).decoded_payloads()
            d2 = rx2.process_branches(branches).decoded_payloads()
            for i in range(3):
                tot += 1
                ok1 += d1.get(i) == payloads[i]
                ok2 += d2.get(i) == payloads[i]
        assert ok2 > ok1

    def test_survives_one_dead_branch(self):
        """All signal on branch 0, branch 1 pure noise: still decodes."""
        codes = twonc_codes(1, 64)
        rng = np.random.default_rng(5)
        noise = NoiseModel()
        amp = np.sqrt(noise.power_w * 10 ** (5 / 10)) / 0.432
        scen = _scenario(1, amp, rng, codes)
        gains = np.array([[1.0], [0.0]])
        branches, _ = simulate_diversity_round(scen, {0: b"only branch 0"}, gains, rng)
        rx = DiversityReceiver({0: codes[0]}, samples_per_chip=SPC, n_antennas=2)
        assert rx.process_branches(branches).decoded_payloads() == {0: b"only branch 0"}
