"""Edge-case tests for the receiver stack (beyond the happy paths)."""

import numpy as np
import pytest

from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver import CbmaReceiver, SicReceiver
from repro.receiver.frame_sync import EnergyDetector
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag


def _signal(tag, payload, amp, offset, spc, total=None, noise=1e-6, seed=0):
    rng = np.random.default_rng(seed)
    sig = ook_baseband(tag.chip_stream(payload, spc), amplitude=amp)
    sig = fractional_delay(sig, offset, total_length=total)
    return sig + noise * (rng.normal(size=sig.size) + 1j * rng.normal(size=sig.size))


class TestReceiverEdgeCases:
    def setup_method(self):
        self.spc = 2
        self.codes = twonc_codes(2, 32)
        self.fmt = FrameFormat()
        self.tags = [Tag(i, self.codes[i], fmt=self.fmt) for i in range(2)]
        self.rx = CbmaReceiver(
            {i: self.codes[i] for i in range(2)}, fmt=self.fmt, samples_per_chip=self.spc
        )

    def test_empty_buffer(self):
        report = self.rx.process(np.zeros(0, dtype=complex))
        assert not report.sync.detected
        assert report.frames == []

    def test_buffer_shorter_than_template(self):
        report = self.rx.process(np.ones(10, dtype=complex), skip_energy_gate=True)
        assert report.frames == []

    def test_empty_payload_frame(self):
        buf = _signal(self.tags[0], b"", 1.0, 128, self.spc)
        report = self.rx.process(buf)
        assert report.decoded_payloads() == {0: b""}

    def test_max_payload_frame(self):
        payload = bytes(range(126))
        buf = _signal(self.tags[0], payload, 1.0, 128, self.spc)
        report = self.rx.process(buf)
        assert report.decoded_payloads().get(0) == payload

    def test_frame_at_buffer_start_without_lead_in(self):
        """No lead-in: energy sync may fire late, but with the gate
        skipped the user detector must still find the frame."""
        buf = _signal(self.tags[0], b"no lead in", 1.0, 0, self.spc)
        report = self.rx.process(buf, skip_energy_gate=True)
        assert report.decoded_payloads().get(0) == b"no lead in"

    def test_frame_truncated_at_buffer_end(self):
        full = _signal(self.tags[0], b"gets cut off...", 1.0, 128, self.spc)
        report = self.rx.process(full[: full.size // 2])
        frame = report.frame_for(0)
        assert frame is None or not frame.success

    def test_back_to_back_frames_same_tag(self):
        """Two consecutive frames from one tag: at least one decodes
        (the pipeline is per-buffer, not streaming)."""
        a = _signal(self.tags[0], b"first frame!", 1.0, 128, self.spc)
        b = _signal(self.tags[0], b"second frame", 1.0, a.size + 32, self.spc,
                    total=a.size + 32 + a.size)
        buf = np.zeros(b.size, dtype=complex)
        buf[: a.size] += a
        buf += b
        report = self.rx.process(buf)
        decoded = report.decoded_payloads().get(0)
        assert decoded in (b"first frame!", b"second frame")

    def test_round_index_propagates_to_ack(self):
        buf = _signal(self.tags[0], b"abc", 1.0, 128, self.spc)
        report = self.rx.process(buf, round_index=17)
        assert report.ack.round_index == 17

    def test_unknown_code_never_reported(self):
        """A tag whose code the receiver does not know is invisible."""
        foreign = Tag(9, twonc_codes(3, 32)[2], fmt=self.fmt)
        buf = _signal(foreign, b"stranger", 1.0, 128, self.spc)
        report = self.rx.process(buf)
        assert all(f.user_id in (0, 1) for f in report.frames)
        assert 9 not in report.decoded_payloads()


class TestEnergyDetectorKnobs:
    def test_warmup_suppresses_early(self):
        rng = np.random.default_rng(0)
        x = 0.01 * (rng.normal(size=2000) + 1j * rng.normal(size=2000))
        x[5:50] += 1.0  # burst before warmup completes
        det = EnergyDetector(warmup_samples=200)
        assert all(d >= 200 for d in det.detect(x).detections)

    def test_zero_guard_allows_adjacent(self):
        rng = np.random.default_rng(1)
        x = 0.01 * (rng.normal(size=4000) + 1j * rng.normal(size=4000))
        x[1000:1400] += 1.0
        many = EnergyDetector(guard_samples=1).detect(x).detections
        few = EnergyDetector(guard_samples=2000).detect(x).detections
        assert len(many) >= len(few)


class TestSicEdgeCases:
    def test_max_passes_one_degenerates_gracefully(self):
        codes = twonc_codes(2, 32)
        fmt = FrameFormat()
        tag = Tag(0, codes[0], fmt=fmt)
        rx = SicReceiver({i: codes[i] for i in range(2)}, fmt=fmt,
                         samples_per_chip=2, max_passes=1)
        buf = _signal(tag, b"single pass", 1.0, 128, 2)
        assert rx.process(buf).decoded_payloads() == {0: b"single pass"}

    def test_empty_buffer(self):
        codes = twonc_codes(1, 32)
        rx = SicReceiver({0: codes[0]}, samples_per_chip=2)
        report = rx.process(np.zeros(0, dtype=complex))
        assert report.frames == []


class TestDegenerateInputs:
    """Satellite: hostile buffers must degrade into DecodeFailure records,
    never escape as exceptions."""

    def setup_method(self):
        self.codes = twonc_codes(2, 32)
        self.fmt = FrameFormat()
        self.rx = CbmaReceiver(
            {i: self.codes[i] for i in range(2)}, fmt=self.fmt, samples_per_chip=2
        )

    def test_zero_length_buffer_reports_cleanly(self):
        report = self.rx.process(np.zeros(0, dtype=complex))
        assert report.frames == []
        assert report.decoded_payloads() == {}

    def test_all_zero_samples(self):
        report = self.rx.process(np.zeros(20_000, dtype=complex))
        assert report.decoded_payloads() == {}

    def test_frame_shorter_than_one_chip(self):
        # One chip spans samples_per_chip samples; a single sample cannot
        # hold even one chip, with or without the energy gate.
        report = self.rx.process(np.ones(1, dtype=complex), skip_energy_gate=True)
        assert report.frames == []

    def test_nan_buffer_is_sanitized_and_flagged(self):
        buf = np.full(4096, np.nan + 1j * np.nan)
        report = self.rx.process(buf, skip_energy_gate=True)
        assert report.degraded
        assert any(
            f.stage == "input" and f.reason == "non_finite" for f in report.failures
        )

    def test_inf_buffer_is_sanitized_and_flagged(self):
        buf = np.ones(4096, dtype=complex)
        buf[100:200] = np.inf
        report = self.rx.process(buf, skip_energy_gate=True)
        assert any(f.reason == "non_finite" for f in report.failures)

    def test_wrong_rank_buffer_is_flattened_and_flagged(self):
        buf = np.zeros((64, 64), dtype=complex)
        report = self.rx.process(buf)
        assert any(f.reason == "not_1d" for f in report.failures)

    def test_uninterpretable_buffer_degrades_to_empty(self):
        report = self.rx.process(["not", "samples"])
        assert report.frames == []
        assert any(f.reason == "uninterpretable" for f in report.failures)

    def test_sic_survives_nan_buffer(self):
        rx = SicReceiver(
            {i: self.codes[i] for i in range(2)}, fmt=self.fmt, samples_per_chip=2
        )
        report = rx.process(np.full(4096, np.nan, dtype=complex))
        assert report.frames == []
        assert report.degraded
