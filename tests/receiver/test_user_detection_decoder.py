"""Unit tests for repro.receiver.user_detection and repro.receiver.decoder."""

import numpy as np
import pytest

from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband, upsample_chips
from repro.receiver.decoder import ChipDecoder
from repro.receiver.user_detection import UserDetector
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag


def _make_signal(tag, payload, amp, offset_samples, spc, total=None, noise=1e-6, seed=0):
    rng = np.random.default_rng(seed)
    chips = tag.chip_stream(payload, spc)
    sig = ook_baseband(chips, amplitude=amp)
    sig = fractional_delay(sig, offset_samples, total_length=total)
    sig = sig + noise * (rng.normal(size=sig.size) + 1j * rng.normal(size=sig.size))
    return sig


class TestUserDetector:
    def setup_method(self):
        self.codes = twonc_codes(3, 32)
        self.fmt = FrameFormat()
        self.spc = 2
        self.tags = [Tag(i, self.codes[i], fmt=self.fmt) for i in range(3)]
        self.det = UserDetector(
            {i: self.codes[i] for i in range(3)}, self.fmt, samples_per_chip=self.spc
        )

    def test_detects_single_user_with_offset(self):
        sig = _make_signal(self.tags[1], b"abc", 1.0, 37, self.spc)
        hits = self.det.detect(sig)
        assert hits and hits[0].user_id == 1
        assert hits[0].offset == 37

    def test_fractional_offset_rounds_to_neighbor(self):
        sig = _make_signal(self.tags[0], b"abc", 1.0, 40.5, self.spc)
        hits = [h for h in self.det.detect(sig) if h.user_id == 0]
        assert hits and abs(hits[0].offset - 40.5) <= 1

    def test_channel_estimate_phase(self):
        amp = 0.5 * np.exp(1j * 1.2)
        sig = _make_signal(self.tags[0], b"abc", amp, 16, self.spc)
        hits = [h for h in self.det.detect(sig) if h.user_id == 0]
        assert hits
        est = hits[0].channel
        assert np.angle(est) == pytest.approx(1.2, abs=0.1)

    def test_silent_users_not_reported_at_high_threshold(self):
        det = UserDetector(
            {i: self.codes[i] for i in range(3)}, self.fmt,
            samples_per_chip=self.spc, threshold=0.5,
        )
        sig = _make_signal(self.tags[2], b"abc", 1.0, 10, self.spc)
        hits = det.detect(sig)
        assert {h.user_id for h in hits} == {2}

    def test_max_users_cap(self):
        sig = _make_signal(self.tags[0], b"abc", 1.0, 10, self.spc)
        sig += _make_signal(self.tags[1], b"xyz", 1.0, 14, self.spc, total=sig.size)
        hits = self.det.detect(sig, max_users=1)
        assert len(hits) == 1

    def test_short_window_no_crash(self):
        assert self.det.detect(np.zeros(10, dtype=complex)) == []

    def test_candidates_include_best_first(self):
        sig = _make_signal(self.tags[0], b"abc", 1.0, 25, self.spc)
        hit = [h for h in self.det.detect(sig) if h.user_id == 0][0]
        assert hit.candidates[0][0] == hit.offset

    def test_empty_codes_rejected(self):
        with pytest.raises(ValueError):
            UserDetector({})

    def test_bad_spc_rejected(self):
        with pytest.raises(ValueError):
            UserDetector({0: self.codes[0]}, samples_per_chip=0)


class TestChipDecoder:
    def setup_method(self):
        self.code = twonc_codes(1, 32)[0]
        self.fmt = FrameFormat()
        self.spc = 2
        self.tag = Tag(0, self.code, fmt=self.fmt)
        self.decoder = ChipDecoder(self.code, self.fmt, samples_per_chip=self.spc)

    def test_decode_clean_frame(self):
        payload = b"clean payload 123"
        sig = _make_signal(self.tag, payload, 1.0, 0, self.spc)
        frame = self.decoder.decode_frame(sig, 0, channel=0.5 + 0j, user_id=0)
        assert frame.success
        assert frame.payload == payload

    def test_decode_with_phase_rotation(self):
        payload = b"rotated"
        amp = np.exp(1j * 2.0)
        sig = _make_signal(self.tag, payload, amp, 0, self.spc)
        frame = self.decoder.decode_frame(sig, 0, channel=amp, user_id=0)
        assert frame.success and frame.payload == payload

    def test_wrong_phase_fails(self):
        """A channel estimate 180 degrees off inverts every bit."""
        payload = b"inverted"
        sig = _make_signal(self.tag, payload, 1.0, 0, self.spc)
        frame = self.decoder.decode_frame(sig, 0, channel=-1.0 + 0j, user_id=0)
        assert not frame.success

    def test_truncated_window(self):
        payload = b"will be cut off"
        sig = _make_signal(self.tag, payload, 1.0, 0, self.spc)
        frame = self.decoder.decode_frame(sig[: sig.size // 3], 0, channel=1.0, user_id=0)
        assert not frame.success
        assert frame.reason == "truncated"

    def test_zero_channel_fallback(self):
        payload = b"zero channel"
        sig = _make_signal(self.tag, payload, 1.0, 0, self.spc)
        frame = self.decoder.decode_frame(sig, 0, channel=0j, user_id=0)
        assert frame.success  # falls back to unity reference

    def test_decode_bits_window_bounds(self):
        sig = np.zeros(10, dtype=complex)
        assert self.decoder.decode_bits(sig, 0, 5, 1.0) is None
        assert self.decoder.decode_bits(sig, -1, 1, 1.0) is None

    def test_invalid_spc(self):
        with pytest.raises(ValueError):
            ChipDecoder(self.code, self.fmt, samples_per_chip=0)

    def test_reason_length_on_garbage(self):
        rng = np.random.default_rng(5)
        noise = rng.normal(size=40_000) + 1j * rng.normal(size=40_000)
        frame = self.decoder.decode_frame(noise, 0, channel=1.0, user_id=0)
        assert not frame.success
        assert frame.reason in {"length", "crc", "truncated"}
