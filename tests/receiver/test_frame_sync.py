"""Unit tests for repro.receiver.frame_sync."""

import numpy as np
import pytest

from repro.receiver.frame_sync import EnergyDetector


def _burst_buffer(lead=600, burst=400, tail=200, amp=1.0, noise=0.02, seed=0):
    rng = np.random.default_rng(seed)
    n = lead + burst + tail
    x = noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    x[lead : lead + burst] += amp * np.exp(1j * rng.uniform(0, 2 * np.pi, burst))
    return x


class TestEnergyDetector:
    def test_detects_burst(self):
        det = EnergyDetector()
        result = det.detect(_burst_buffer())
        assert result.detected
        assert any(abs(d - 600) < 40 for d in result.detections)

    def test_no_detection_in_pure_noise(self):
        rng = np.random.default_rng(1)
        noise = 0.02 * (rng.normal(size=4000) + 1j * rng.normal(size=4000))
        det = EnergyDetector(threshold_db=6.0, power_window=64)
        assert not det.detect(noise).detected

    def test_empty_buffer(self):
        assert not EnergyDetector().detect(np.zeros(0)).detected

    def test_guard_suppresses_repeats(self):
        det = EnergyDetector(guard_samples=1000)
        result = det.detect(_burst_buffer())
        assert len(result.detections) <= 2

    def test_weak_burst_missed(self):
        """Bursts below the 3 dB margin must not trigger."""
        x = _burst_buffer(amp=0.02, noise=0.02)
        det = EnergyDetector(power_window=64, threshold_db=3.0)
        result = det.detect(x)
        assert all(abs(d - 600) > 40 for d in result.detections) or not result.detected

    def test_threshold_db_semantics(self):
        """A burst exactly k dB above the floor is caught only when the
        configured margin is below k."""
        # Burst power ~9.5 dB above noise floor.
        x = _burst_buffer(amp=0.06, noise=0.02)
        lenient = EnergyDetector(threshold_db=3.0, power_window=32)
        strict = EnergyDetector(threshold_db=15.0, power_window=32)
        assert any(abs(d - 600) < 40 for d in lenient.detect(x).detections)
        assert not any(abs(d - 600) < 40 for d in strict.detect(x).detections)

    def test_detection_near_onset_not_inside_burst(self):
        det = EnergyDetector()
        result = det.detect(_burst_buffer(lead=900))
        onset_hits = [d for d in result.detections if 850 <= d <= 960]
        assert onset_hits, result.detections
