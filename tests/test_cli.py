"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRunCommand:
    def test_basic_run(self, capsys):
        assert main(["run", "--tags", "2", "--rounds", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "FER" in out
        assert "goodput" in out

    def test_power_control_flag(self, capsys):
        assert main([
            "run", "--tags", "2", "--rounds", "4", "--power-control", "--seed", "3",
        ]) == 0
        assert "power control" in capsys.readouterr().out

    def test_code_family_option(self, capsys):
        assert main([
            "run", "--tags", "2", "--rounds", "4",
            "--code-family", "gold", "--code-length", "31",
        ]) == 0
        assert "gold-31" in capsys.readouterr().out


class TestExperimentCommand:
    def test_fig12(self, capsys):
        assert main(["experiment", "fig12", "--rounds", "10"]) == 0
        out = capsys.readouterr().out
        assert "OFDM excitation" in out

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_fig11_plots_series(self, capsys):
        assert main(["experiment", "fig11", "--rounds", "8"]) == 0
        out = capsys.readouterr().out
        assert "error rate" in out


class TestFieldCommand:
    def test_field(self, capsys):
        assert main(["field", "--resolution", "15"]) == 0
        out = capsys.readouterr().out
        assert "dBm" in out


class TestProfileCommand:
    def test_table_output(self, capsys):
        assert main(["profile", "--tags", "4", "--rounds", "3"]) == 0
        out = capsys.readouterr().out
        for stage in ("frame_sync", "detect", "decode", "crc", "sic"):
            assert stage in out, f"stage {stage} missing from profile output"
        assert "error budget" in out
        assert "FER" in out

    def test_standard_receiver(self, capsys):
        assert main([
            "profile", "--tags", "2", "--rounds", "3", "--receiver", "standard",
        ]) == 0
        out = capsys.readouterr().out
        assert "decode" in out and "sic" not in out.split("error budget")[0].split()

    def test_json_output_parses(self, capsys):
        assert main(["profile", "--tags", "4", "--rounds", "4", "--json"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        events = [json.loads(line) for line in lines]
        types = {e["type"] for e in events}
        assert {"span", "counter", "profile"} <= types
        span_names = {e["name"] for e in events if e["type"] == "span"}
        for stage in ("frame_sync", "detect", "decode", "crc", "sic"):
            assert stage in span_names
        (profile,) = [e for e in events if e["type"] == "profile"]
        assert profile["counters"]["round.rounds"] == 4
        assert "delivered" in profile["error_budget"]

    def test_trace_file_written(self, tmp_path, capsys):
        path = str(tmp_path / "events.jsonl")
        assert main(["profile", "--tags", "2", "--rounds", "2", "--trace", path]) == 0
        from repro.obs import read_jsonl

        back = read_jsonl(path)
        assert back["spans"] and back["profile"] is not None

    def test_deterministic_given_seed(self, capsys):
        assert main(["profile", "--tags", "3", "--rounds", "3", "--seed", "9", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["profile", "--tags", "3", "--rounds", "3", "--seed", "9", "--json"]) == 0
        second = capsys.readouterr().out

        def counters(text):
            return {
                (e["name"]): e["value"]
                for e in (json.loads(l) for l in text.splitlines() if l.strip())
                if e["type"] == "counter"
            }

        assert counters(first) == counters(second)


class TestTraceCommands:
    def test_record_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(["trace", "record", path, "--tags", "2", "--rounds", "5"]) == 0
        data = json.loads(open(path).read())
        assert data["n_tags"] == 2
        assert len(data["rounds"]) == 5
        assert main(["trace", "replay", path]) == 0
        out = capsys.readouterr().out
        assert "replayed 5 rounds" in out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAdaptCommand:
    def test_adapt_runs(self, capsys):
        assert main([
            "adapt", "--tags", "2", "--distance", "1.0", "--epochs", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "chosen code length" in out
        assert "goodput score" in out


class TestSystemCommand:
    def test_system_runs(self, capsys):
        assert main([
            "system", "--population", "4", "--group", "2",
            "--epochs", "2", "--rounds", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Deployment summary" in out
        assert "fairness" in out

    def test_system_with_mobility(self, capsys):
        assert main([
            "system", "--population", "4", "--group", "2",
            "--epochs", "2", "--rounds", "3", "--mobility",
        ]) == 0
        assert "Deployment summary" in capsys.readouterr().out


class TestGatewayCommand:
    """Exit-code contract: 0 = invariants held, 1 = violations,
    2 = unusable input -- the same convention the lint CLI keeps."""

    def test_soak_exit_0_when_invariants_hold(self, capsys):
        assert main([
            "gateway", "soak", "--streams", "4", "--rounds", "3", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "all gateway invariants held" in out
        assert "ladder path" in out

    def test_soak_exit_1_on_violation(self, monkeypatch, tmp_path, capsys):
        from repro.gateway import soak as gwsoak
        from repro.sim.experiments.soak import InvariantViolation

        def fake(cfg, plan=None, tracer=None):
            return gwsoak.GatewaySoakResult(
                config=cfg, plan=plan, reports={}, offered={},
                round_states=["full"], transitions=[],
                admitted=0, rejected=0, shed=0, deadline_misses=0,
                migrations=0, moved_sessions=[], peak_queue_depth=0,
                peak_retained_samples=0,
                violations=[InvariantViolation("silent_drop", "synthetic")],
            )

        monkeypatch.setattr(gwsoak, "run_gateway_soak", fake)
        artifact = tmp_path / "plan.json"
        rc = main([
            "gateway", "soak", "--streams", "4", "--rounds", "3",
            "--no-shrink", "--artifact", str(artifact),
        ])
        assert rc == 1
        assert "VIOLATED" in capsys.readouterr().out
        payload = json.loads(artifact.read_text())
        assert payload["violations"][0]["name"] == "silent_drop"
        assert payload["plan"]["faults"]

    def test_soak_exit_2_on_unreadable_plan(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["gateway", "soak", "--plan", str(missing)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"faults": [{"kind": "meteor_strike"}]}')
        assert main(["gateway", "soak", "--plan", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "unusable fault plan" in err

    def test_soak_exit_2_on_bad_config(self, capsys):
        assert main(["gateway", "soak", "--streams", "0"]) == 2
        assert "bad soak config" in capsys.readouterr().err

    def test_missing_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as err:
            main(["gateway"])
        assert err.value.code == 2


class TestMacroExitCodes:
    def test_validate_exit_2_on_corrupt_surface(self, tmp_path, capsys):
        corrupt = tmp_path / "surface.json"
        corrupt.write_text('{"not even')
        assert main(["macro", "validate", "--surface", str(corrupt)]) == 2
        assert "unusable FER surface" in capsys.readouterr().err

    def test_run_exit_2_on_wrong_schema(self, tmp_path, capsys):
        wrong = tmp_path / "surface.json"
        wrong.write_text(json.dumps({"schema": "something/else"}))
        assert main([
            "macro", "run", "--surface", str(wrong), "--tags", "10",
        ]) == 2
        assert "unusable FER surface" in capsys.readouterr().err
