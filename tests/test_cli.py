"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRunCommand:
    def test_basic_run(self, capsys):
        assert main(["run", "--tags", "2", "--rounds", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "FER" in out
        assert "goodput" in out

    def test_power_control_flag(self, capsys):
        assert main([
            "run", "--tags", "2", "--rounds", "4", "--power-control", "--seed", "3",
        ]) == 0
        assert "power control" in capsys.readouterr().out

    def test_code_family_option(self, capsys):
        assert main([
            "run", "--tags", "2", "--rounds", "4",
            "--code-family", "gold", "--code-length", "31",
        ]) == 0
        assert "gold-31" in capsys.readouterr().out


class TestExperimentCommand:
    def test_fig12(self, capsys):
        assert main(["experiment", "fig12", "--rounds", "10"]) == 0
        out = capsys.readouterr().out
        assert "OFDM excitation" in out

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_fig11_plots_series(self, capsys):
        assert main(["experiment", "fig11", "--rounds", "8"]) == 0
        out = capsys.readouterr().out
        assert "error rate" in out


class TestFieldCommand:
    def test_field(self, capsys):
        assert main(["field", "--resolution", "15"]) == 0
        out = capsys.readouterr().out
        assert "dBm" in out


class TestTraceCommands:
    def test_record_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(["trace", "record", path, "--tags", "2", "--rounds", "5"]) == 0
        data = json.loads(open(path).read())
        assert data["n_tags"] == 2
        assert len(data["rounds"]) == 5
        assert main(["trace", "replay", path]) == 0
        out = capsys.readouterr().out
        assert "replayed 5 rounds" in out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAdaptCommand:
    def test_adapt_runs(self, capsys):
        assert main([
            "adapt", "--tags", "2", "--distance", "1.0", "--epochs", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "chosen code length" in out
        assert "goodput score" in out


class TestSystemCommand:
    def test_system_runs(self, capsys):
        assert main([
            "system", "--population", "4", "--group", "2",
            "--epochs", "2", "--rounds", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Deployment summary" in out
        assert "fairness" in out

    def test_system_with_mobility(self, capsys):
        assert main([
            "system", "--population", "4", "--group", "2",
            "--epochs", "2", "--rounds", "3", "--mobility",
        ]) == 0
        assert "Deployment summary" in capsys.readouterr().out
