"""Tests for the metric-name taxonomy registry (repro.obs.taxonomy)."""

import pytest

from repro.faults.models import FAULT_REASONS
from repro.obs.taxonomy import (
    C,
    DECODE_REASONS,
    FAULT_KINDS,
    G,
    MetricKind,
    SPAN_NAMES,
    TAXONOMY,
    decode_outcome,
    family_for,
    fault_loss,
    is_known,
    pipeline_failure,
    validate,
)
from repro.receiver.failures import DecodeFailure


def _constants(namespace):
    return [
        value
        for key, value in vars(namespace).items()
        if key.isupper() and isinstance(value, str)
    ]


def test_every_counter_constant_is_declared():
    for name in _constants(C):
        assert validate(name, MetricKind.COUNTER) is None, name


def test_every_gauge_constant_is_declared():
    for name in _constants(G):
        assert validate(name, MetricKind.GAUGE) is None, name


def test_every_span_name_is_declared():
    for name in SPAN_NAMES:
        assert validate(name, MetricKind.SPAN) is None, name


def test_validate_rejects_unknown_names():
    assert validate("detect.scor", MetricKind.GAUGE) is not None
    assert validate("errors.pipline.decode.crc", MetricKind.COUNTER) is not None
    assert validate("made.up.entirely", MetricKind.COUNTER) is not None


def test_validate_rejects_kind_mismatch():
    # A declared gauge name used as a counter is still an error.
    assert validate(G.DETECT_SCORE, MetricKind.GAUGE) is None
    assert validate(G.DETECT_SCORE, MetricKind.COUNTER) is not None


def test_validate_rejects_placeholder_outside_allowed_set():
    msg = validate("errors.pipeline.decode.made_up", MetricKind.COUNTER)
    assert msg is not None
    assert "made_up" in msg


def test_is_known_and_family_for_agree():
    assert is_known(C.CRC_OK, MetricKind.COUNTER)
    family = family_for(C.CRC_OK, MetricKind.COUNTER)
    assert family is not None
    assert family.kind is MetricKind.COUNTER
    assert family_for("nope.nope", MetricKind.COUNTER) is None


def test_taxonomy_families_have_descriptions():
    for family in TAXONOMY:
        assert family.description, family.pattern


def test_pipeline_failure_constructor():
    name = pipeline_failure("decode", "exception")
    assert name == "errors.pipeline.decode.exception"
    assert is_known(name, MetricKind.COUNTER)
    with pytest.raises(ValueError):
        pipeline_failure("decode", "bogus_reason")
    with pytest.raises(ValueError):
        pipeline_failure("bogus_stage", "exception")


def test_fault_loss_accepts_bare_and_prefixed_kinds():
    assert fault_loss("dropout") == "errors.fault.dropout"
    assert fault_loss("fault.dropout") == "errors.fault.dropout"
    with pytest.raises(ValueError):
        fault_loss("made_up")


def test_decode_outcome_constructor():
    for reason in DECODE_REASONS:
        assert is_known(decode_outcome(reason), MetricKind.COUNTER)
    with pytest.raises(ValueError):
        decode_outcome("nonsense")


def test_fault_reasons_mirror_fault_kinds():
    # repro.faults derives its injectable reasons from the taxonomy's
    # kind list; the two must never drift apart.
    assert FAULT_REASONS == tuple(
        f"fault.{kind}" for kind in FAULT_KINDS if kind != "ack_loss"
    )
    for reason in FAULT_REASONS:
        assert is_known(fault_loss(reason), MetricKind.COUNTER)


def test_decode_failure_counter_uses_checked_constructor():
    failure = DecodeFailure(stage="decode", reason="exception", user_id=1)
    assert failure.counter == "errors.pipeline.decode.exception"
    bogus = DecodeFailure(stage="decode", reason="bogus", user_id=1)
    with pytest.raises(ValueError):
        _ = bogus.counter
