"""Tracer core: null singleton, span nesting, counters, disabled cost."""

import time

import pytest

from repro.obs import NULL_TRACER, PIPELINE_STAGES, NullTracer, SpanRecord, Tracer, as_tracer


class TestNullTracer:
    def test_singleton_shared(self):
        assert as_tracer(None) is NULL_TRACER
        assert as_tracer(NULL_TRACER) is NULL_TRACER

    def test_as_tracer_passthrough(self):
        t = Tracer()
        assert as_tracer(t) is t

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_noop_records_nothing(self):
        t = NullTracer()
        with t.span("frame_sync", user=3):
            t.count("x")
            t.gauge("y", 1.0)
        profile = t.profile()
        assert profile.stages == {}
        assert profile.counters == {}
        assert profile.gauges == {}

    def test_null_span_reusable_and_nested(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                pass  # nesting the shared span object must not blow up

    def test_disabled_overhead_is_small(self):
        """10k spans + counters through the null tracer stay cheap."""
        t = NULL_TRACER
        start = time.perf_counter()
        for _ in range(10_000):
            with t.span("frame_sync"):
                t.count("decode.ok")
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5, f"null-tracer overhead too high: {elapsed:.3f}s"


class TestTracer:
    def test_span_records_duration(self):
        t = Tracer()
        with t.span("frame_sync"):
            pass
        (rec,) = t.records
        assert isinstance(rec, SpanRecord)
        assert rec.name == "frame_sync"
        assert rec.duration_s >= 0.0
        assert rec.depth == 0

    def test_nesting_depths(self):
        t = Tracer()
        with t.span("round"):
            with t.span("sic"):
                with t.span("decode", user=2):
                    pass
            with t.span("detect"):
                pass
        by_name = {r.name: r for r in t.records}
        assert by_name["round"].depth == 0
        assert by_name["sic"].depth == 1
        assert by_name["decode"].depth == 2
        assert by_name["detect"].depth == 1
        assert by_name["decode"].attrs == {"user": 2}

    def test_span_records_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("crc"):
                raise ValueError("boom")
        assert [r.name for r in t.records] == ["crc"]

    def test_counters_and_gauges(self):
        t = Tracer()
        t.count("crc.ok")
        t.count("crc.ok", 2)
        t.gauge("tag.snr_db", 10.0)
        t.gauge("tag.snr_db", 20.0)
        assert t.counters["crc.ok"] == 3
        assert t.gauges["tag.snr_db"] == [10.0, 20.0]

    def test_clear(self):
        t = Tracer()
        with t.span("decode"):
            t.count("x")
            t.gauge("g", 1.0)
        t.clear()
        assert t.records == [] and t.counters == {} and t.gauges == {}

    def test_pipeline_stage_names_are_canonical(self):
        assert PIPELINE_STAGES == ("frame_sync", "detect", "decode", "crc", "sic")


class TestZeroCostInPipeline:
    def test_untraced_run_identical_to_traced(self):
        """Tracing observes the pipeline without perturbing it."""
        from repro.channel.geometry import Deployment
        from repro.sim.network import CbmaConfig, CbmaNetwork

        def run(tracer):
            net = CbmaNetwork(
                CbmaConfig(n_tags=3, seed=11),
                Deployment.linear(3, tag_to_rx=1.0),
                tracer=tracer,
            )
            return net.run_rounds(4)

        untraced = run(None)
        traced = run(Tracer())
        assert untraced.fer == traced.fer
        assert untraced.frames_correct == traced.frames_correct
        assert untraced.frames_detected == traced.frames_detected
