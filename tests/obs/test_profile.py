"""RunProfile aggregation, error budget, JSONL export round-trip."""

import json

from repro.obs import RunProfile, Tracer, jsonl_lines, read_jsonl, write_jsonl


def _traced_run():
    t = Tracer()
    for _ in range(3):
        with t.span("round"):
            with t.span("frame_sync"):
                pass
            with t.span("decode", user=1):
                with t.span("crc"):
                    pass
    t.count("round.frames_sent", 6)
    t.count("round.frames_correct", 3)
    t.count("errors.not_detected", 1)
    t.count("errors.not_decoded", 2)
    t.gauge("tag.snr_db", 8.0)
    t.gauge("tag.snr_db", 12.0)
    return t


class TestRunProfile:
    def test_stage_stats(self):
        profile = _traced_run().profile()
        assert set(profile.stages) == {"round", "frame_sync", "decode", "crc"}
        sync = profile.stages["frame_sync"]
        assert sync.count == 3
        assert sync.total_s >= 0.0
        assert sync.p50_s <= sync.p95_s <= sync.max_s

    def test_error_budget_attribution(self):
        budget = _traced_run().profile().error_budget
        assert budget["detect"] == 1 / 6
        assert budget["decode"] == 2 / 6
        assert budget["payload"] == 0.0
        assert budget["delivered"] == 3 / 6

    def test_gauge_stats(self):
        profile = _traced_run().profile()
        g = profile.gauges["tag.snr_db"]
        assert g.count == 2
        assert g.mean == 10.0

    def test_dict_json_round_trip(self):
        profile = _traced_run().profile(wall_time_s=1.5)
        back = RunProfile.from_json(profile.to_json())
        assert back.wall_time_s == 1.5
        assert set(back.stages) == set(profile.stages)
        assert back.counters == profile.counters
        assert back.error_budget == profile.error_budget

    def test_format_table_mentions_stages(self):
        text = _traced_run().profile().format_table()
        for name in ("frame_sync", "decode", "crc"):
            assert name in text


class TestJsonlExport:
    def test_every_line_parses(self):
        t = _traced_run()
        lines = list(jsonl_lines(t, profile=t.profile()))
        parsed = [json.loads(line) for line in lines]
        types = {p["type"] for p in parsed}
        assert types == {"span", "counter", "gauge", "profile"}

    def test_file_round_trip(self, tmp_path):
        t = _traced_run()
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(path, t, profile=t.profile())
        assert n == len(path.read_text().splitlines())

        back = read_jsonl(path)
        assert [r.name for r in back["spans"]] == [r.name for r in t.records]
        assert back["spans"][0].duration_s == t.records[0].duration_s
        assert back["counters"] == t.counters
        assert back["gauges"] == t.gauges
        assert back["profile"] is not None
        assert back["profile"].error_budget["delivered"] == 0.5

    def test_round_trip_without_profile(self, tmp_path):
        t = _traced_run()
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, t)
        assert read_jsonl(path)["profile"] is None
