"""ExperimentResult: serialisation and the post-shim access contract."""

import numpy as np
import pytest

from repro.obs import ExperimentResult, Tracer


def _result():
    return ExperimentResult(
        experiment_id="demo",
        x_label="n",
        x=[1, 2, 3],
        series={"fer": [0.1, 0.2, 0.3]},
        notes="a note",
        params={"rounds": 5},
        metrics={"cbma_bps": 1234.5},
        seed=7,
        wall_time_s=0.25,
    )


class TestSerialisation:
    def test_json_round_trip(self):
        back = ExperimentResult.from_json(_result().to_json())
        assert back.experiment_id == "demo"
        assert back.x == [1, 2, 3]
        assert back.series == {"fer": [0.1, 0.2, 0.3]}
        assert back.params == {"rounds": 5}
        assert back.metrics == {"cbma_bps": 1234.5}
        assert back.seed == 7
        assert back.wall_time_s == 0.25

    def test_numpy_values_coerced(self):
        r = ExperimentResult(
            experiment_id="np",
            x=list(np.arange(3)),
            series={"y": [np.float64(1.5)]},
            metrics={"m": np.float32(2.0)},
            artifacts={"grid": np.eye(2)},
        )
        back = ExperimentResult.from_json(r.to_json())
        assert back.x == [0, 1, 2]
        assert back.series["y"] == [1.5]
        assert back.metrics["m"] == 2.0
        assert back.artifacts["grid"] == [[1.0, 0.0], [0.0, 1.0]]

    def test_profile_round_trips(self):
        t = Tracer()
        with t.span("decode"):
            pass
        r = _result()
        r.profile = t.profile()
        back = ExperimentResult.from_json(r.to_json())
        assert back.profile is not None
        assert "decode" in back.profile.stages

    def test_summarize_series(self):
        r = _result().summarize_series()
        assert r.metrics["mean:fer"] == pytest.approx(0.2)


class TestRemovedShims:
    """The one-release deprecation shims are gone: the explicit
    ``metrics``/``artifacts`` access paths are the whole contract."""

    def test_metrics_attribute_fallthrough_removed(self):
        with pytest.raises(AttributeError):
            _result().cbma_bps

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            _result().no_such_thing

    def test_real_fields_resolve(self):
        r = _result()
        assert r.metrics["cbma_bps"] == 1234.5
        assert r.seed == 7

    def test_not_iterable(self):
        with pytest.raises(TypeError):
            iter(_result())

    def test_no_legacy_tuple_field(self):
        with pytest.raises(TypeError):
            ExperimentResult(experiment_id="x", legacy_tuple=(1, 2, 3))


class TestDriverContract:
    """Every migrated driver returns the unified shape."""

    def test_fig5_artifacts(self):
        from repro.sim.experiments import fig5_signal_field

        r = fig5_signal_field(resolution=9)
        assert set(r.artifacts) == {"xs", "ys", "field_dbm"}
        assert r.params["resolution"] == 9
        assert r.wall_time_s > 0
        with pytest.raises(TypeError):
            xs, ys, field = r

    def test_headline_metrics_complete(self):
        from repro.sim.experiments import headline_throughput

        r = headline_throughput(n_tags=3, rounds=4)
        for key in (
            "cbma_bps",
            "single_tag_bps",
            "fsa_bps",
            "fdma_bps",
            "cbma_fer",
            "aggregate_raw_bps",
            "speedup_vs_single",
            "speedup_vs_fsa",
        ):
            assert key in r.metrics, key
        assert r.seed is not None and r.wall_time_s > 0
        with pytest.raises(AttributeError):
            r.cbma_bps
