"""Unit tests for repro.channel.pathloss (Friis eq. (1), Fig. 5 field)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.geometry import Deployment, Point
from repro.channel.pathloss import LinkBudget, signal_strength_field


class TestLinkBudget:
    def test_wavelength(self):
        assert LinkBudget(carrier_hz=2e9).wavelength_m == pytest.approx(0.15, abs=0.001)

    def test_equation_structure(self):
        """Doubling either distance costs exactly 6 dB (1/d^2 per leg)."""
        b = LinkBudget()
        base = b.received_power_dbm(1.0, 1.0)
        assert b.received_power_dbm(2.0, 1.0) == pytest.approx(base - 6.02, abs=0.05)
        assert b.received_power_dbm(1.0, 2.0) == pytest.approx(base - 6.02, abs=0.05)

    def test_delta_gamma_quadratic(self):
        """Received power scales with |delta Gamma|^2."""
        b = LinkBudget()
        p1 = b.received_power_w(1.0, 1.0, delta_gamma=1.0)
        p2 = b.received_power_w(1.0, 1.0, delta_gamma=0.5)
        assert p1 / p2 == pytest.approx(4.0)

    def test_tx_power_linear(self):
        lo = LinkBudget(tx_power_dbm=0.0).received_power_dbm(1.0, 1.0)
        hi = LinkBudget(tx_power_dbm=10.0).received_power_dbm(1.0, 1.0)
        assert hi - lo == pytest.approx(10.0)

    def test_near_field_floor(self):
        """Distances are floored so degenerate geometry stays finite."""
        b = LinkBudget()
        assert np.isfinite(b.received_power_dbm(0.0, 0.0))
        assert b.received_power_w(0.0, 1.0) == b.received_power_w(0.05, 1.0)

    def test_amplitude_is_sqrt_power(self):
        b = LinkBudget()
        amp = b.received_amplitude(0.7, 1.3, 0.8)
        assert amp**2 == pytest.approx(b.received_power_w(0.7, 1.3, 0.8))

    def test_verbatim_equation(self):
        """Check the implementation against a hand-evaluated eq. (1)."""
        b = LinkBudget(tx_power_dbm=30.0, carrier_hz=3e8, gain_tx=1.0, gain_rx=1.0, gain_tag=1.0, alpha=1.0)
        lam = b.wavelength_m  # ~1 m at 300 MHz
        d1, d2, dg = 2.0, 3.0, 1.0
        expected = (
            (1.0 * 1.0 / (4 * math.pi * d1**2))
            * (lam**2 / (4 * math.pi) * dg**2 / 4)
            * (1.0 / (4 * math.pi * d2**2) * lam**2 / (4 * math.pi))
        )
        assert b.received_power_w(d1, d2, dg) == pytest.approx(expected, rel=1e-9)

    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_monotone_in_distance(self, d1, d2):
        b = LinkBudget()
        assert b.received_power_w(d1, d2) >= b.received_power_w(d1 * 1.5, d2)
        assert b.received_power_w(d1, d2) >= b.received_power_w(d1, d2 * 1.5)

    def test_deployment_helper(self):
        dep = Deployment()
        dep.add_tag(Point(0, 0))
        b = LinkBudget()
        d1, d2 = dep.tag_distances(0)
        assert b.tag_power_for_deployment(dep, 0) == pytest.approx(b.received_power_w(d1, d2))


class TestSignalStrengthField:
    def test_shape(self):
        xs, ys, field = signal_strength_field(
            LinkBudget(), Point(-0.5, 0), Point(0.5, 0), resolution=21
        )
        assert field.shape == (21, 21)
        assert xs.size == 21 and ys.size == 21

    def test_peaks_near_endpoints(self):
        """Signal is strongest for tags near the ES or the RX (Fig. 5)."""
        xs, ys, field = signal_strength_field(
            LinkBudget(), Point(-0.5, 0), Point(0.5, 0),
            x_range=(-2, 2), y_range=(-2, 2), resolution=41,
        )
        centre_row = field[ys.size // 2]
        # The strongest grid point on the axis is near x = +-0.5, not at the rim.
        peak_x = xs[int(np.argmax(centre_row))]
        assert abs(abs(peak_x) - 0.5) < 0.3

    def test_symmetric_for_symmetric_layout(self):
        xs, ys, field = signal_strength_field(
            LinkBudget(), Point(-0.5, 0), Point(0.5, 0),
            x_range=(-2, 2), y_range=(-2, 2), resolution=41,
        )
        assert np.allclose(field, field[:, ::-1], atol=1e-6)

    def test_far_corner_weak(self):
        xs, ys, field = signal_strength_field(
            LinkBudget(), Point(-0.5, 0), Point(0.5, 0),
            x_range=(-3, 3), y_range=(-2, 2), resolution=31,
        )
        assert field[0, 0] < field[ys.size // 2, xs.size // 2]
