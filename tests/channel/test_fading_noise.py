"""Unit tests for repro.channel.fading and repro.channel.noise."""

import numpy as np
import pytest

from repro.channel.fading import (
    FadingModel,
    mutual_coupling_penalty,
    rayleigh_gain,
    rician_gain,
)
from repro.channel.noise import BOLTZMANN, NoiseModel, thermal_noise_power_w


class TestRayleigh:
    def test_unit_mean_power(self):
        rng = np.random.default_rng(0)
        gains = rayleigh_gain(rng, size=200_000)
        assert float(np.mean(np.abs(gains) ** 2)) == pytest.approx(1.0, rel=0.02)

    def test_complex(self):
        assert np.iscomplexobj(rayleigh_gain(np.random.default_rng(1), size=4))


class TestRician:
    def test_unit_mean_power(self):
        rng = np.random.default_rng(2)
        gains = rician_gain(6.0, rng, size=200_000)
        assert float(np.mean(np.abs(gains) ** 2)) == pytest.approx(1.0, rel=0.02)

    def test_high_k_low_variance(self):
        rng = np.random.default_rng(3)
        high_k = np.abs(rician_gain(100.0, rng, size=10_000))
        low_k = np.abs(rician_gain(0.5, np.random.default_rng(3), size=10_000))
        assert np.std(high_k) < np.std(low_k)

    def test_k_zero_is_rayleigh_like(self):
        rng = np.random.default_rng(4)
        gains = rician_gain(0.0, rng, size=100_000)
        assert float(np.mean(np.abs(gains) ** 2)) == pytest.approx(1.0, rel=0.03)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            rician_gain(-1.0)


class TestMutualCoupling:
    def test_no_penalty_beyond_half_lambda(self):
        assert mutual_coupling_penalty(0.08, 0.15) == 0.0

    def test_full_penalty_at_contact(self):
        assert mutual_coupling_penalty(0.0, 0.15, floor_db=6.0) == pytest.approx(6.0)

    def test_linear_ramp(self):
        lam = 0.15
        assert mutual_coupling_penalty(lam / 4, lam, floor_db=6.0) == pytest.approx(3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            mutual_coupling_penalty(-0.1, 0.15)
        with pytest.raises(ValueError):
            mutual_coupling_penalty(0.1, 0.0)


class TestFadingModel:
    def test_sample_gain_deterministic_with_seed(self):
        m = FadingModel()
        a = m.sample_gain(np.random.default_rng(5))
        b = m.sample_gain(np.random.default_rng(5))
        assert a == b

    def test_sample_gains_count(self):
        assert FadingModel().sample_gains(7, np.random.default_rng(0)).size == 7

    def test_mean_power_near_unity(self):
        m = FadingModel(k_factor=12.0, shadowing_sigma_db=1.0)
        gains = m.sample_gains(20_000, np.random.default_rng(1))
        assert float(np.mean(np.abs(gains) ** 2)) == pytest.approx(1.0, rel=0.1)


class TestNoise:
    def test_thermal_reference(self):
        """kTB at 290 K and 1 Hz is -174 dBm."""
        p = thermal_noise_power_w(1.0)
        dbm = 10 * np.log10(p * 1000)
        assert dbm == pytest.approx(-174.0, abs=0.1)

    def test_noise_figure_adds(self):
        base = thermal_noise_power_w(1e6)
        with_nf = thermal_noise_power_w(1e6, noise_figure_db=10.0)
        assert with_nf / base == pytest.approx(10.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_power_w(0.0)

    def test_model_power_and_std(self):
        m = NoiseModel(bandwidth_hz=1e6, noise_figure_db=0.0, extra_noise_db=0.0)
        assert m.power_w == pytest.approx(BOLTZMANN * 290.0 * 1e6)
        assert m.std_per_component == pytest.approx(np.sqrt(m.power_w / 2))

    def test_sample_statistics(self):
        m = NoiseModel()
        samples = m.sample(100_000, np.random.default_rng(0))
        measured = float(np.mean(np.abs(samples) ** 2))
        assert measured == pytest.approx(m.power_w, rel=0.03)

    def test_extra_noise_scales(self):
        base = NoiseModel(extra_noise_db=0.0).power_w
        raised = NoiseModel(extra_noise_db=20.0).power_w
        assert raised / base == pytest.approx(100.0)
