"""Unit tests for repro.channel.mobility."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment, Point, Room
from repro.channel.mobility import RandomWalk, RandomWaypoint


def _deployment(n=4):
    dep = Deployment(room=Room(width=4.0, depth=3.0))
    rng = np.random.default_rng(0)
    for _ in range(n):
        dep.tags.append(dep.room.random_point(rng))
    return dep


class TestRandomWalk:
    def test_tags_move(self):
        dep = _deployment()
        before = [(p.x, p.y) for p in dep.tags]
        RandomWalk(step_sigma_m=0.1).update(dep, rng=np.random.default_rng(1))
        after = [(p.x, p.y) for p in dep.tags]
        assert before != after

    def test_stays_in_room(self):
        dep = _deployment()
        walk = RandomWalk(step_sigma_m=0.5)
        rng = np.random.default_rng(2)
        for _ in range(100):
            walk.update(dep, rng=rng)
            assert all(dep.room.contains(p) for p in dep.tags)

    def test_step_scales_with_dt(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        dep_a, dep_b = _deployment(1), _deployment(1)
        RandomWalk(0.1).update(dep_a, dt_s=0.01, rng=rng_a)
        RandomWalk(0.1).update(dep_b, dt_s=100.0, rng=rng_b)
        start = _deployment(1).tags[0]
        assert start.distance_to(dep_a.tags[0]) < start.distance_to(dep_b.tags[0])

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            RandomWalk().update(_deployment(), dt_s=-1.0)

    def test_deterministic_with_seed(self):
        dep_a, dep_b = _deployment(), _deployment()
        RandomWalk(0.1).update(dep_a, rng=np.random.default_rng(5))
        RandomWalk(0.1).update(dep_b, rng=np.random.default_rng(5))
        assert [(p.x, p.y) for p in dep_a.tags] == [(p.x, p.y) for p in dep_b.tags]


class TestRandomWaypoint:
    def test_moves_toward_waypoint(self):
        dep = _deployment(1)
        model = RandomWaypoint(speed_range_mps=(0.5, 0.5), pause_s=0.0)
        rng = np.random.default_rng(4)
        start = dep.tags[0]
        model.update(dep, dt_s=1.0, rng=rng)
        moved = start.distance_to(dep.tags[0])
        assert moved == pytest.approx(0.5, abs=1e-6) or moved < 0.5  # reached early

    def test_stays_in_room_long_run(self):
        dep = _deployment(3)
        model = RandomWaypoint()
        rng = np.random.default_rng(6)
        for _ in range(200):
            model.update(dep, dt_s=0.5, rng=rng)
            assert all(dep.room.contains(p) for p in dep.tags)

    def test_pause_freezes_tag(self):
        dep = _deployment(1)
        model = RandomWaypoint(speed_range_mps=(10.0, 10.0), pause_s=5.0)
        rng = np.random.default_rng(7)
        model.update(dep, dt_s=10.0, rng=rng)  # reaches waypoint, starts pause
        frozen = dep.tags[0]
        model.update(dep, dt_s=1.0, rng=rng)  # still pausing
        assert dep.tags[0].distance_to(frozen) == 0.0

    def test_positions_decorrelate(self):
        """Long-run mobility visits substantially different positions."""
        dep = _deployment(1)
        model = RandomWaypoint(pause_s=0.0)
        rng = np.random.default_rng(8)
        start = dep.tags[0]
        distances = []
        for _ in range(300):
            model.update(dep, dt_s=1.0, rng=rng)
            distances.append(start.distance_to(dep.tags[0]))
        assert max(distances) > 1.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint().update(_deployment(), dt_s=-0.1)
