"""Unit tests for repro.channel.geometry."""

import math

import pytest

from repro.channel.geometry import Deployment, PAPER_D_METERS, Point, Room


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_array(self):
        assert Point(1.5, -2.0).as_array().tolist() == [1.5, -2.0]


class TestRoom:
    def test_contains(self):
        room = Room(width=4.0, depth=2.0)
        assert room.contains(Point(1.9, 0.9))
        assert not room.contains(Point(2.1, 0.0))
        assert not room.contains(Point(0.0, 1.1))

    def test_random_point_inside(self):
        room = Room(width=2.0, depth=2.0)
        for seed in range(20):
            p = room.random_point(seed)
            assert room.contains(p)

    def test_margin_too_large(self):
        with pytest.raises(ValueError):
            Room(width=0.1, depth=0.1).random_point(0, margin=0.2)


class TestDeployment:
    def test_default_positions(self):
        dep = Deployment()
        assert dep.excitation.x == -PAPER_D_METERS
        assert dep.receiver.x == PAPER_D_METERS

    def test_add_tag_and_distances(self):
        dep = Deployment()
        idx = dep.add_tag(Point(0.0, 0.0))
        d1, d2 = dep.tag_distances(idx)
        assert d1 == pytest.approx(PAPER_D_METERS)
        assert d2 == pytest.approx(PAPER_D_METERS)

    def test_add_tag_outside_room(self):
        dep = Deployment(room=Room(width=1.0, depth=1.0))
        with pytest.raises(ValueError):
            dep.add_tag(Point(5.0, 0.0))

    def test_inter_tag_distance(self):
        dep = Deployment()
        dep.add_tag(Point(0, 0))
        dep.add_tag(Point(0, 1))
        assert dep.inter_tag_distance(0, 1) == pytest.approx(1.0)

    def test_min_inter_tag_distance(self):
        dep = Deployment()
        dep.add_tag(Point(0, 0))
        assert dep.min_inter_tag_distance() == math.inf
        dep.add_tag(Point(0.2, 0))
        dep.add_tag(Point(1.0, 0))
        assert dep.min_inter_tag_distance() == pytest.approx(0.2)


class TestRandomDeployment:
    def test_count_and_spacing(self):
        dep = Deployment.random(5, rng=3, min_spacing=0.3)
        assert len(dep.tags) == 5
        assert dep.min_inter_tag_distance() >= 0.3

    def test_deterministic(self):
        a = Deployment.random(3, rng=11)
        b = Deployment.random(3, rng=11)
        assert all(p.x == q.x and p.y == q.y for p, q in zip(a.tags, b.tags))

    def test_impossible_spacing(self):
        with pytest.raises(RuntimeError):
            Deployment.random(50, rng=0, room=Room(width=1.0, depth=1.0), min_spacing=0.5)


class TestLinearDeployment:
    def test_geometry(self):
        dep = Deployment.linear(3, tag_to_rx=2.0)
        assert dep.excitation.x == pytest.approx(-0.5)
        assert dep.receiver.x == pytest.approx(2.0)
        # Tag cluster at x=0; middle tag on the axis.
        assert dep.tags[1].x == pytest.approx(0.0)
        assert dep.tags[1].y == pytest.approx(0.0)

    def test_es_to_tag_roughly_constant(self):
        """The paper fixes ES-to-tag at 50 cm while the RX moves."""
        for d in (0.1, 1.0, 4.0):
            dep = Deployment.linear(4, tag_to_rx=d)
            for i in range(4):
                d1, _ = dep.tag_distances(i)
                assert 0.45 <= d1 <= 0.60

    def test_spacing(self):
        dep = Deployment.linear(2, tag_to_rx=1.0, spacing=0.2)
        assert dep.inter_tag_distance(0, 1) == pytest.approx(0.2)
