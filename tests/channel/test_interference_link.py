"""Unit tests for repro.channel.interference and repro.channel.link."""

import numpy as np
import pytest

from repro.channel.fading import FadingModel
from repro.channel.geometry import Deployment, Point, Room
from repro.channel.interference import (
    BluetoothInterference,
    NoInterference,
    OfdmExcitationGate,
    WiFiInterference,
)
from repro.channel.link import realize_channel
from repro.channel.pathloss import LinkBudget
from repro.utils.db import dbm_to_watts


class TestNoInterference:
    def test_zeros(self):
        out = NoInterference().sample(100, 1e6)
        assert np.all(out == 0)


class TestWiFi:
    def test_duty_cycle_statistic(self):
        w = WiFiInterference(mean_burst_s=1e-3, mean_idle_s=3e-3)
        assert w.duty_cycle() == pytest.approx(0.25)
        rng = np.random.default_rng(0)
        samples = w.sample(500_000, 1e6, rng)
        occupied = np.mean(np.abs(samples) > 0)
        assert occupied == pytest.approx(0.25, abs=0.08)

    def test_burst_power(self):
        w = WiFiInterference(power_dbm=-50.0, overlap=1.0)
        rng = np.random.default_rng(1)
        samples = w.sample(500_000, 1e6, rng)
        busy = samples[np.abs(samples) > 0]
        assert float(np.mean(np.abs(busy) ** 2)) == pytest.approx(
            dbm_to_watts(-50.0), rel=0.1
        )

    def test_overlap_scales_power(self):
        rng = np.random.default_rng(2)
        full = WiFiInterference(power_dbm=-50, overlap=1.0).sample(200_000, 1e6, rng)
        rng = np.random.default_rng(2)
        part = WiFiInterference(power_dbm=-50, overlap=0.25).sample(200_000, 1e6, rng)
        assert np.mean(np.abs(part) ** 2) == pytest.approx(
            0.25 * np.mean(np.abs(full) ** 2), rel=0.05
        )


class TestBluetooth:
    def test_rare_hits(self):
        bt = BluetoothInterference(hit_probability=1 / 79, activity=1.0)
        rng = np.random.default_rng(3)
        samples = bt.sample(2_000_000, 1e6, rng)
        occupied = float(np.mean(np.abs(samples) > 0))
        assert occupied == pytest.approx(1 / 79, rel=0.4)

    def test_slot_structure(self):
        """Hits occupy whole 625 us slots."""
        bt = BluetoothInterference(hit_probability=0.5, activity=1.0)
        rng = np.random.default_rng(4)
        fs = 1e6
        samples = bt.sample(200_000, fs, rng)
        slot = int(625e-6 * fs)
        mask = (np.abs(samples) > 0).astype(int)
        # Within each slot the mask is constant.
        n_slots = samples.size // slot
        for k in range(0, n_slots, 37):
            window = mask[k * slot : (k + 1) * slot]
            assert window.min() == window.max()


class TestOfdmGate:
    def test_binary(self):
        gate = OfdmExcitationGate().gate(10_000, 1e6, np.random.default_rng(0))
        assert set(np.unique(gate)) <= {0.0, 1.0}

    def test_duty(self):
        g = OfdmExcitationGate(mean_on_s=2e-3, mean_off_s=2e-3)
        assert g.duty_cycle() == pytest.approx(0.5)
        gate = g.gate(1_000_000, 1e6, np.random.default_rng(1))
        assert float(gate.mean()) == pytest.approx(0.5, abs=0.1)

    def test_invalid_means(self):
        with pytest.raises(ValueError):
            OfdmExcitationGate(mean_on_s=0.0).gate(10, 1e6, np.random.default_rng(0))


class TestRealizeChannel:
    def _deployment(self, positions):
        dep = Deployment(room=Room(width=20, depth=20))
        for p in positions:
            dep.tags.append(Point(*p))
        return dep

    def test_link_count_and_amplitudes(self):
        dep = self._deployment([(0, 0), (0.5, 0.5)])
        real = realize_channel(dep, LinkBudget(), [1.0, 1.0], fading=None)
        assert len(real.links) == 2
        assert real.amplitudes().shape == (2,)
        assert np.all(real.powers_w() > 0)

    def test_delta_gamma_mismatch(self):
        dep = self._deployment([(0, 0)])
        with pytest.raises(ValueError):
            realize_channel(dep, LinkBudget(), [1.0, 1.0])

    def test_deterministic_without_fading(self):
        dep = self._deployment([(0.2, 0.3)])
        a = realize_channel(dep, LinkBudget(), [1.0], fading=None)
        b = realize_channel(dep, LinkBudget(), [1.0], fading=None)
        assert a.links[0].amplitude == b.links[0].amplitude

    def test_phase_from_path_length(self):
        """Deterministic phase rotates with the round-trip distance."""
        near = self._deployment([(0.0, 0.1)])
        far = self._deployment([(0.0, 0.9)])
        a = realize_channel(near, LinkBudget(), [1.0], fading=None).links[0]
        b = realize_channel(far, LinkBudget(), [1.0], fading=None).links[0]
        assert not np.isclose(np.angle(a.amplitude), np.angle(b.amplitude))

    def test_coupling_penalty_for_close_tags(self):
        apart = self._deployment([(0.0, 0.0), (1.0, 0.0)])
        close = self._deployment([(0.0, 0.0), (0.02, 0.0)])
        # Use equal per-tag geometry by comparing the same tag index.
        p_apart = realize_channel(apart, LinkBudget(), [1, 1], fading=None).links[0].power_w
        p_close = realize_channel(close, LinkBudget(), [1, 1], fading=None).links[0].power_w
        assert p_close < p_apart

    def test_fading_changes_gain(self):
        dep = self._deployment([(0.1, 0.4)])
        a = realize_channel(dep, LinkBudget(), [1.0], fading=FadingModel(), rng=1).links[0]
        b = realize_channel(dep, LinkBudget(), [1.0], fading=FadingModel(), rng=2).links[0]
        assert a.amplitude != b.amplitude
