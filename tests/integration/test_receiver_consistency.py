"""Cross-receiver consistency: plain, SIC and MRC must agree on easy
inputs and degrade consistently on hard ones."""

import numpy as np
import pytest

from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver import CbmaReceiver, DiversityReceiver, SicReceiver
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag

SPC = 2


def _clean_buffer(tags, payloads, amps, offsets, noise=1e-6, seed=0):
    rng = np.random.default_rng(seed)
    streams = []
    for tag, amp, off in zip(tags, amps, offsets):
        if tag.tag_id not in payloads:
            continue
        sig = ook_baseband(tag.chip_stream(payloads[tag.tag_id], SPC), amplitude=amp)
        streams.append(fractional_delay(sig, 128 + off))
    n = max(s.size for s in streams) + 64
    buf = np.zeros(n, dtype=complex)
    for s in streams:
        buf[: s.size] += s
    return buf + noise * (rng.normal(size=n) + 1j * rng.normal(size=n))


@pytest.fixture
def stack():
    codes = twonc_codes(3, 64)
    fmt = FrameFormat()
    tags = [Tag(i, codes[i], fmt=fmt) for i in range(3)]
    code_map = {i: codes[i] for i in range(3)}
    return (
        tags,
        CbmaReceiver(code_map, fmt=fmt, samples_per_chip=SPC),
        SicReceiver(code_map, fmt=fmt, samples_per_chip=SPC),
        DiversityReceiver(code_map, fmt=fmt, samples_per_chip=SPC, n_antennas=2),
    )


class TestReceiverConsistency:
    def test_all_decode_clean_collision(self, stack):
        tags, plain, sic, mrc = stack
        payloads = {i: bytes([65 + i]) * 12 for i in range(3)}
        amps = [np.exp(1j * k) for k in (0.3, 2.1, 4.4)]
        buf = _clean_buffer(tags, payloads, amps, [0.0, 3.3, 7.7])
        assert plain.process(buf).decoded_payloads() == payloads
        assert sic.process(buf).decoded_payloads() == payloads
        assert mrc.process_branches([buf, buf]).decoded_payloads() == payloads

    def test_sic_superset_of_plain(self, stack):
        """Whatever plain decodes, SIC must also decode (same buffer)."""
        tags, plain, sic, _ = stack
        rng = np.random.default_rng(5)
        for trial in range(5):
            payloads = {
                i: bytes(rng.integers(0, 256, 12, dtype=np.uint8)) for i in range(3)
            }
            amps = [
                float(a) * np.exp(1j * rng.uniform(0, 6.28))
                for a in rng.uniform(0.2, 1.0, 3)
            ]
            buf = _clean_buffer(
                tags, payloads, amps, rng.uniform(0, 12, 3), noise=0.02, seed=trial
            )
            plain_ok = {
                uid for uid, p in plain.process(buf).decoded_payloads().items()
                if p == payloads[uid]
            }
            sic_ok = {
                uid for uid, p in sic.process(buf).decoded_payloads().items()
                if p == payloads[uid]
            }
            # SIC may rescue extra tags but should not lose decodes
            # (tolerate at most marginal flips on noisy trials).
            assert len(sic_ok) >= len(plain_ok) - 1

    def test_acks_match_decodes_everywhere(self, stack):
        tags, plain, sic, mrc = stack
        payloads = {0: b"ack consistency"}
        buf = _clean_buffer(tags, payloads, [1.0, 0, 0], [2.0, 0, 0])
        for report in (
            plain.process(buf),
            sic.process(buf),
            mrc.process_branches([buf, buf]),
        ):
            decoded = {f.user_id for f in report.frames if f.success}
            assert set(report.ack.decoded_ids) == decoded

    def test_mrc_single_buffer_process_matches_plain(self, stack):
        """DiversityReceiver.process (inherited single-buffer path)
        behaves like the plain receiver."""
        tags, plain, _, mrc = stack
        payloads = {1: b"inherited path"}
        buf = _clean_buffer(tags, payloads, [0, 1.0, 0], [0, 1.0, 0])
        assert (
            mrc.process(buf).decoded_payloads()
            == plain.process(buf).decoded_payloads()
        )
