"""Integration tests: tag -> channel -> receiver -> MAC, end to end."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment, Room
from repro.mac.node_selection import NodeSelector
from repro.mac.power_control import PowerController
from repro.sim.network import CbmaConfig, CbmaNetwork


class TestEndToEnd:
    def test_two_tags_reliable_at_one_meter(self):
        cfg = CbmaConfig(n_tags=2, seed=42)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        metrics = net.run_rounds(30)
        assert metrics.fer < 0.2
        assert metrics.detection_rate > 0.9

    def test_more_tags_more_errors(self):
        """MAI ordering: collisions of more tags decode worse."""
        fers = {}
        for n in (2, 5):
            cfg = CbmaConfig(n_tags=n, seed=42)
            net = CbmaNetwork(cfg, Deployment.linear(n, tag_to_rx=1.0))
            fers[n] = net.run_rounds(30).fer
        assert fers[5] >= fers[2]

    def test_distance_degrades(self):
        fers = {}
        for d in (1.0, 6.0):
            cfg = CbmaConfig(n_tags=2, seed=42)
            net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=d))
            fers[d] = net.run_rounds(25).fer
        assert fers[6.0] > fers[1.0]

    def test_weak_excitation_kills_link(self):
        from repro.channel.pathloss import LinkBudget

        cfg = CbmaConfig(n_tags=2, seed=42, budget=LinkBudget(tx_power_dbm=-5.0))
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        assert net.run_rounds(20).fer > 0.8

    def test_gold_codes_also_work(self):
        cfg = CbmaConfig(n_tags=2, seed=42, code_family="gold", code_length=31)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        assert net.run_rounds(25).fer < 0.4

    def test_power_control_never_hurts_much(self):
        """On a near-far deployment, Algorithm 1 must help (or at least
        not make things clearly worse)."""
        room = Room(width=1.6, depth=1.2)
        dep = Deployment.random(3, rng=77, room=room, min_spacing=0.15)
        cfg = CbmaConfig(n_tags=3, seed=77)
        before = CbmaNetwork(cfg, dep).run_rounds(25).fer
        net = CbmaNetwork(cfg, dep)
        net.run_power_control(PowerController(packets_per_epoch=6))
        after = net.run_rounds(25).fer
        assert after <= before + 0.1

    def test_node_selection_moves_bad_tag(self):
        """A far-away tag gets swapped for a close idle position."""
        dep = Deployment(room=Room(width=12, depth=8))
        from repro.channel.geometry import Point

        dep.tags = [Point(4.0, 2.5), Point(0.0, 0.2), Point(0.2, -0.2)]
        cfg = CbmaConfig(n_tags=2, seed=13)
        net = CbmaNetwork(cfg, dep)
        probe = net.run_rounds(15)
        ratios = [probe.per_tag_ack_ratio(t.tag_id) for t in net.tags]
        selector = NodeSelector(
            deployment=dep, budget=cfg.budget, initial_temperature=0.01
        )
        outcome = selector.select_round(net.positions, ratios, rng=np.random.default_rng(1))
        if 0 in outcome.replaced:  # tag 0 was bad, as engineered
            net.positions = list(outcome.group)
            after = net.run_rounds(15)
            assert after.fer <= probe.fer

    def test_full_cbma_pipeline_with_all_mechanisms(self):
        """Power control then selection on a random deployment with
        spare positions; the pipeline runs end to end and produces a
        sane FER."""
        room = Room(width=1.6, depth=1.2)
        dep = Deployment.random(6, rng=5, room=room, min_spacing=0.12)
        cfg = CbmaConfig(n_tags=4, seed=5)
        net = CbmaNetwork(cfg, dep)
        net.run_power_control(PowerController(packets_per_epoch=6))
        probe = net.run_rounds(12)
        ratios = [probe.per_tag_ack_ratio(t.tag_id) for t in net.tags]
        selector = NodeSelector(deployment=dep, budget=cfg.budget)
        outcome = selector.select_round(net.positions, ratios, rng=np.random.default_rng(2))
        net.positions = list(outcome.group)
        final = net.run_rounds(12)
        assert 0.0 <= final.fer <= 1.0
        assert final.frames_sent == 48


class TestAcknowledgementLoop:
    def test_acks_reach_tag_stats(self):
        cfg = CbmaConfig(n_tags=2, seed=3)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        net.run_rounds(10)
        for tag in net.tags:
            assert tag.stats.sent == 10
            assert 0 <= tag.stats.acked <= 10
