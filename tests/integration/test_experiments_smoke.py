"""Smoke tests for every paper-experiment driver (cheap settings).

Each driver is exercised with tiny round counts: these tests assert
structure (labels, lengths, value ranges) and the cheapest version of
the expected *shape*; the full-scale shapes are produced by the
benchmark harness.
"""

import numpy as np
import pytest

from repro.sim.experiments import (
    fig5_signal_field,
    fig8a_distance,
    fig8b_power,
    fig8c_preamble,
    fig9a_bitrate,
    fig9b_pn_codes,
    fig9c_power_control,
    fig10_deployment_cdfs,
    fig11_asynchrony,
    fig12_working_conditions,
    headline_throughput,
    table1_system_comparison,
    table2_power_difference,
    user_detection_accuracy,
)


class TestFieldAndTables:
    def test_fig5_field(self):
        r = fig5_signal_field(resolution=11)
        field = r.artifacts["field_dbm"]
        assert field.shape == (11, 11)
        assert np.isfinite(field).all()

    def test_table2_structure(self):
        r = table2_power_difference(n_pairs=3, rounds=10)
        assert len(r.series["snr1_db"]) == 3
        assert all(0 <= d <= 1 for d in r.series["difference"])
        assert all(0 <= e <= 1 for e in r.series["error_rate"])

    def test_table1_structure(self):
        r = table1_system_comparison(tag_counts=(1, 2), rounds=6)
        assert len(r.series["aggregate goodput (bps)"]) == 2
        assert "Netscatter" in r.notes


class TestMicroDrivers:
    def test_fig8a(self):
        r = fig8a_distance(distances_m=(0.5, 3.5), tag_counts=(2,), rounds=10)
        assert list(r.series) == ["2 tags"]
        assert len(r.series["2 tags"]) == 2

    def test_fig8b_power_trend(self):
        r = fig8b_power(tx_powers_dbm=(-5.0, 20.0), tag_counts=(2,), rounds=12)
        lo_power_fer, hi_power_fer = r.series["2 tags"]
        assert lo_power_fer > hi_power_fer

    def test_fig8c_preamble_trend(self):
        r = fig8c_preamble(preamble_bits=(4, 32), tag_counts=(2,), rounds=12)
        short, long_ = r.series["2 tags"]
        assert short >= long_

    def test_fig9a(self):
        r = fig9a_bitrate(bitrates_hz=(250e3, 5e6), tag_counts=(2,), rounds=8)
        assert len(r.series["2 tags"]) == 2


class TestCodesAndPower:
    def test_fig9b(self):
        r = fig9b_pn_codes(tag_counts=(2,), rounds=8, n_groups=2)
        assert set(r.series) == {"gold-31", "2nc-64"}

    def test_fig9c(self):
        r = fig9c_power_control(tag_counts=(2,), n_groups=2, rounds=8)
        assert len(r.series["without power control"]) == 1
        assert len(r.series["with power control"]) == 1


class TestMacroDrivers:
    def test_fig10(self):
        r = fig10_deployment_cdfs(n_tags=2, n_groups=2, n_idle_positions=2, rounds=8)
        assert set(r.series) == {
            "no control",
            "power control",
            "power control + tag selection",
        }
        for fers in r.series.values():
            assert len(fers) == 2

    def test_fig11(self):
        r = fig11_asynchrony(delays_chips=(0.0, 1.0), rounds=10)
        assert len(r.series["error rate"]) == 2

    def test_fig12(self):
        r = fig12_working_conditions(rounds=15)
        prr = dict(zip(r.x, r.series["PRR"]))
        assert prr["no interference"] >= prr["OFDM excitation"]


class TestComparative:
    def test_user_detection(self):
        r = user_detection_accuracy(n_trials=10)
        acc = r.series["value"][0]
        assert 0 <= acc <= 1

    def test_headline(self):
        r = headline_throughput(rounds=8)
        assert r.metrics["aggregate_raw_bps"] == pytest.approx(8e6)
        assert r.metrics["cbma_bps"] > 0
        assert r.metrics["speedup_vs_fsa"] > r.metrics["speedup_vs_single"]
