"""Failure injection: hostile inputs must fail loudly or degrade, never
corrupt results silently."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.codes import twonc_codes
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver import CbmaReceiver
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag

SPC = 2


def _clean_frame_buffer(tag, payload, seed=0):
    rng = np.random.default_rng(seed)
    sig = ook_baseband(tag.chip_stream(payload, SPC), amplitude=1.0)
    sig = fractional_delay(sig, 128, total_length=sig.size + 200)
    return sig + 1e-6 * (rng.normal(size=sig.size) + 1j * rng.normal(size=sig.size))


@pytest.fixture
def rx_and_tag():
    codes = twonc_codes(1, 32)
    fmt = FrameFormat()
    tag = Tag(0, codes[0], fmt=fmt)
    rx = CbmaReceiver({0: codes[0]}, fmt=fmt, samples_per_chip=SPC)
    return rx, tag


class TestHostileBuffers:
    def test_nan_samples_do_not_produce_decodes(self, rx_and_tag):
        rx, tag = rx_and_tag
        buf = _clean_frame_buffer(tag, b"nan attack")
        buf[::100] = np.nan
        report = rx.process(buf)
        # NaNs poison correlations; the receiver must not emit a
        # "successful" decode whose provenance is garbage.
        for frame in report.frames:
            if frame.success:
                assert frame.payload == b"nan attack"

    def test_inf_burst_handled(self, rx_and_tag):
        rx, tag = rx_and_tag
        buf = _clean_frame_buffer(tag, b"inf inside")
        buf[50:60] = np.inf
        report = rx.process(buf)  # must not raise
        assert report is not None

    def test_all_zero_buffer(self, rx_and_tag):
        rx, _ = rx_and_tag
        report = rx.process(np.zeros(5000, dtype=complex))
        assert all(not f.success for f in report.frames)

    def test_huge_dc_offset(self, rx_and_tag):
        """A constant leak (un-cancelled carrier) must not create
        phantom frames; the bipolar templates reject DC."""
        rx, tag = rx_and_tag
        rng = np.random.default_rng(1)
        buf = 5.0 + 1e-3 * (rng.normal(size=40000) + 1j * rng.normal(size=40000))
        report = rx.process(buf)
        assert all(not f.success for f in report.frames)

    def test_dc_plus_frame_decodes_with_blocker(self, rx_and_tag):
        """With the opt-in carrier-leak blocker, a strong constant
        offset riding on the capture is tolerated."""
        from repro.codes import twonc_codes

        codes = twonc_codes(1, 32)
        fmt = FrameFormat()
        tag = Tag(0, codes[0], fmt=fmt)
        rx = CbmaReceiver(
            {0: codes[0]}, fmt=fmt, samples_per_chip=SPC, dc_block=True
        )
        buf = _clean_frame_buffer(tag, b"dc riding!") + 3.0
        report = rx.process(buf, skip_energy_gate=True)
        assert report.decoded_payloads().get(0) == b"dc riding!"


class TestHostileConfiguration:
    def test_zero_tags_config(self):
        cfg = CbmaConfig(n_tags=0, seed=1)
        with pytest.raises(Exception):
            CbmaNetwork(cfg, Deployment.linear(1, tag_to_rx=1.0)).run_rounds(1)

    def test_mismatched_code_family_length(self):
        with pytest.raises(ValueError):
            CbmaConfig(n_tags=2, code_family="gold", code_length=30).frame_bits
            from repro.codes import make_codes

            make_codes("gold", 2, 30)

    def test_payload_too_large_raises_at_build(self):
        cfg = CbmaConfig(n_tags=1, payload_bytes=127, seed=1)
        with pytest.raises(ValueError):
            cfg.frame_bits()

    def test_adversarial_payload_equal_to_preamble(self, rx_and_tag):
        """A payload of 0xAA bytes mimics the preamble pattern
        everywhere; the earliest-first hypothesis policy must still
        find the real frame start."""
        rx, tag = rx_and_tag
        payload = b"\xaa" * 16
        buf = _clean_frame_buffer(tag, payload, seed=3)
        report = rx.process(buf)
        assert report.decoded_payloads().get(0) == payload
