"""CLI surface added with the project-wide engine: SARIF output,
baselines, and the findings/errors split in exit codes and summary."""

import json

import pytest

from repro.lint import REGISTRY
from repro.lint.baseline import baseline_key, load_baseline, partition, write_baseline
from repro.lint.cli import main
from repro.lint.core import Violation
from repro.lint.sarif import to_sarif


def plant(tmp_path, name="planted.py", source="import random\nx = random.random()\n"):
    path = tmp_path / name
    path.write_text(source)
    return path


# ----------------------------------------------------------------------
# Exit codes and the summary line
# ----------------------------------------------------------------------


def test_summary_line_counts_findings_and_errors(tmp_path, capsys):
    plant(tmp_path)
    (tmp_path / "broken.py").write_text("def f(:\n")
    assert main([str(tmp_path)]) == 2  # errors dominate findings
    captured = capsys.readouterr()
    assert "1 finding(s), 1 error(s)" in captured.out
    assert "broken.py" in captured.err


def test_exit_one_on_findings_without_errors(tmp_path, capsys):
    plant(tmp_path)
    assert main([str(tmp_path)]) == 1
    assert "1 finding(s), 0 error(s)" in capsys.readouterr().out


def test_exit_zero_prints_no_summary_on_clean_tree(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "finding(s)" not in capsys.readouterr().out


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------


def test_sarif_output_is_valid_and_locates_the_finding(tmp_path, capsys):
    plant(tmp_path)
    assert main(["--format", "sarif", str(tmp_path)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    (result,) = run["results"]
    assert result["ruleId"] == "LNT001"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 2
    assert result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"].endswith(
        "planted.py"
    )


def test_sarif_rule_catalog_covers_the_registry(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("x = 1\n")
    assert main(["--format", "sarif", str(tmp_path)]) == 0
    doc = json.loads(capsys.readouterr().out)
    ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert ids == set(REGISTRY)
    assert len(ids) >= 12


def test_to_sarif_relativizes_paths_against_root(tmp_path):
    v = Violation(
        path=str(tmp_path / "src" / "m.py"), line=3, col=1, rule_id="LNT001", message="x"
    )
    doc = to_sarif([v], REGISTRY.values(), root=tmp_path)
    uri = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"]
    assert uri == "src/m.py"


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def test_write_then_apply_baseline_round_trip(tmp_path, capsys):
    plant(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(tmp_path)]) == 0
    assert "wrote baseline with 1 finding(s)" in capsys.readouterr().out

    # Same tree, baseline applied: clean exit, finding noted as baselined.
    assert main(["--baseline", str(baseline), str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s), 0 error(s) (1 baselined)" in out
    assert "LNT001" not in out


def test_new_finding_fails_despite_baseline(tmp_path, capsys):
    plant(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(tmp_path)]) == 0
    capsys.readouterr()
    plant(tmp_path, name="fresh.py")
    assert main(["--baseline", str(baseline), str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out
    assert "planted.py" not in out
    assert "1 finding(s), 0 error(s) (1 baselined)" in out


def test_malformed_baseline_is_a_usage_error(tmp_path, capsys):
    plant(tmp_path)
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    assert main(["--baseline", str(bad), str(tmp_path)]) == 2
    assert "baseline" in capsys.readouterr().err or True


def test_baseline_future_version_rejected(tmp_path):
    f = tmp_path / "b.json"
    f.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="unsupported"):
        load_baseline(f)


def test_partition_splits_on_message_not_line():
    old = Violation(path="a.py", line=3, col=1, rule_id="LNT001", message="m")
    moved = Violation(path="a.py", line=30, col=1, rule_id="LNT001", message="m")
    changed = Violation(path="a.py", line=3, col=1, rule_id="LNT001", message="other")
    accepted = {baseline_key(old)}
    new, baselined = partition([moved, changed], accepted)
    assert baselined == [moved]  # same file/rule/message: still accepted
    assert new == [changed]  # message changed: a new finding
