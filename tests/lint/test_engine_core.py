"""Unit tests for the analysis engine underneath the project rules:
CFG construction, scope-limited node iteration, the dataflow solver,
the typestate checker, and the project index."""

import ast
from pathlib import Path

from repro.lint.engine import (
    CFG,
    ForwardAnalysis,
    ProjectIndex,
    ReachingDefinitions,
    StateMachine,
    TypestateChecker,
    build_cfg,
    summarize,
)
from repro.lint.engine.cfg import scope_nodes


def fn_cfg(source):
    tree = ast.parse(source)
    fn = tree.body[0]
    return fn, build_cfg(fn)


# ----------------------------------------------------------------------
# CFG shapes
# ----------------------------------------------------------------------


def test_straight_line_is_one_block_into_exit():
    _fn, cfg = fn_cfg("def f():\n    a = 1\n    b = a\n    return b\n")
    entry = cfg.block(cfg.entry)
    assert len(entry.statements) == 3
    assert entry.successors == {cfg.exit}


def test_if_without_else_has_fall_through_edge():
    _fn, cfg = fn_cfg(
        "def f(x):\n"
        "    a = 1\n"
        "    if x:\n"
        "        a = 2\n"
        "    return a\n"
    )
    entry = cfg.block(cfg.entry)
    # Entry holds `a = 1` and the If header, and branches both ways.
    assert [type(s).__name__ for s in entry.statements] == ["Assign", "If"]
    assert len(entry.successors) == 2


def test_while_loop_has_back_edge_and_zero_iteration_exit():
    _fn, cfg = fn_cfg(
        "def f(n):\n"
        "    total = 0\n"
        "    while n:\n"
        "        n = n - 1\n"
        "        total = total + n\n"
        "    return total\n"
    )
    heads = [b for b in cfg if b.statements and isinstance(b.statements[0], ast.While)]
    assert len(heads) == 1
    head = heads[0]
    assert len(head.successors) == 2  # body entry + loop-done exit
    assert any(head.block_id in cfg.block(s).successors for s in head.successors)


def test_while_true_without_break_never_reaches_following_code():
    _fn, cfg = fn_cfg(
        "def f(q):\n"
        "    while True:\n"
        "        q.get()\n"
    )
    heads = [b for b in cfg if b.statements and isinstance(b.statements[0], ast.While)]
    assert cfg.exit not in heads[0].successors


def test_break_edges_to_after_loop_block():
    _fn, cfg = fn_cfg(
        "def f(q):\n"
        "    while True:\n"
        "        if q.done():\n"
        "            break\n"
        "    return 1\n"
    )
    returns = [
        b.block_id for b in cfg if any(isinstance(s, ast.Return) for s in b.statements)
    ]
    assert len(returns) == 1  # break path reaches the return


def test_try_body_edges_into_handler():
    _fn, cfg = fn_cfg(
        "def f(q):\n"
        "    try:\n"
        "        x = q.get()\n"
        "    except KeyError:\n"
        "        x = None\n"
        "    return x\n"
    )
    handler_blocks = [
        b for b in cfg if any(isinstance(s, ast.ExceptHandler) for s in b.statements)
    ]
    assert len(handler_blocks) == 1
    assert handler_blocks[0].predecessors  # reachable from the body


def test_return_terminates_the_path():
    _fn, cfg = fn_cfg(
        "def f(x):\n"
        "    if x:\n"
        "        return 1\n"
        "    return 2\n"
    )
    for block in cfg:
        for stmt in block.statements:
            if isinstance(stmt, ast.Return):
                assert cfg.exit in block.successors


def test_reverse_postorder_starts_at_entry_and_covers_reachable():
    _fn, cfg = fn_cfg(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    )
    order = cfg.reverse_postorder()
    assert order[0] == cfg.entry
    assert set(order) >= {cfg.entry, cfg.exit}


# ----------------------------------------------------------------------
# scope_nodes: header-only iteration of compound statements
# ----------------------------------------------------------------------


def test_scope_nodes_yields_only_the_if_test():
    stmt = ast.parse("if ring.claim():\n    ring.release(s)\n").body[0]
    calls = [n for n in scope_nodes(stmt) if isinstance(n, ast.Call)]
    assert len(calls) == 1
    assert calls[0].func.attr == "claim"  # the body's release is elsewhere


def test_scope_nodes_yields_for_target_and_iter_not_body():
    stmt = ast.parse("for x in items():\n    handle(x)\n").body[0]
    calls = [n for n in scope_nodes(stmt) if isinstance(n, ast.Call)]
    assert [c.func.id for c in calls] == ["items"]


def test_scope_nodes_skips_nested_function_bodies():
    stmt = ast.parse("cb = lambda: leak(slot)\n").body[0]
    names = {n.id for n in scope_nodes(stmt) if isinstance(n, ast.Name)}
    assert "slot" not in names  # lambda body executes later, if ever


def test_scope_nodes_plain_statement_is_full_subtree():
    stmt = ast.parse("q.put((tag, slot))\n").body[0]
    names = {n.id for n in scope_nodes(stmt) if isinstance(n, ast.Name)}
    assert {"q", "tag", "slot"} <= names


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------


def reaching_at_exit(source, name):
    _fn, cfg = fn_cfg(source)
    rd = ReachingDefinitions(cfg)
    return rd.definitions_of(cfg.exit, name)


def test_reaching_defs_straight_line_kills_prior_definition():
    defs = reaching_at_exit("def f():\n    a = 1\n    a = 2\n    return a\n", "a")
    assert len(defs) == 1
    assert defs[0].value.value == 2


def test_reaching_defs_merge_at_branch_join():
    defs = reaching_at_exit(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n",
        "a",
    )
    assert sorted(d.value.value for d in defs) == [1, 2]


def test_reaching_defs_loop_carries_both_initial_and_updated():
    defs = reaching_at_exit(
        "def f(n):\n"
        "    a = 0\n"
        "    while n:\n"
        "        a = a + 1\n"
        "        n = n - 1\n"
        "    return a\n",
        "a",
    )
    assert len(defs) == 2  # the pre-loop 0 and the in-loop update


# ----------------------------------------------------------------------
# Typestate checker
# ----------------------------------------------------------------------

MACHINE = StateMachine(
    initial="open",
    transitions={
        ("open", "use"): "open",
        ("open", "close"): "closed",
    },
    accepting=frozenset({"closed"}),
)


def run_machine(source):
    tree = ast.parse(source)
    fn = tree.body[0]

    def births(stmt):
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "acquire"
        ):
            return [stmt.targets[0].id]
        return []

    def events(stmt):
        out = []
        for node in scope_nodes(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("use", "close") and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Name):
                        out.append((arg.id, node.func.id, node))
        return out

    checker = TypestateChecker(MACHINE, births, events)
    return checker.check(build_cfg(fn), fn)


def test_typestate_clean_lifecycle_has_no_issues():
    assert run_machine("def f():\n    h = acquire()\n    use(h)\n    close(h)\n") == []


def test_typestate_leak_at_function_exit():
    issues = run_machine("def f():\n    h = acquire()\n    use(h)\n")
    assert [i.kind for i in issues] == ["leak"]
    assert issues[0].name == "h"
    assert issues[0].state == "open"
    assert issues[0].line == 1  # anchored at the def


def test_typestate_leak_only_on_one_branch_is_still_reported():
    issues = run_machine(
        "def f(x):\n"
        "    h = acquire()\n"
        "    if x:\n"
        "        close(h)\n"
    )
    assert [i.kind for i in issues] == ["leak"]


def test_typestate_bad_transition_use_after_close():
    issues = run_machine(
        "def f():\n"
        "    h = acquire()\n"
        "    close(h)\n"
        "    use(h)\n"
    )
    assert [(i.kind, i.event, i.state) for i in issues] == [
        ("bad-transition", "use", "closed")
    ]
    assert issues[0].line == 4


def test_typestate_rebind_of_open_value_is_a_leak_at_that_line():
    issues = run_machine(
        "def f():\n"
        "    h = acquire()\n"
        "    h = make_other()\n"
        "    close(h)\n"
    )
    assert [i.kind for i in issues] == ["leak"]
    assert issues[0].line == 3


def test_typestate_rename_transfers_tracking():
    issues = run_machine(
        "def f():\n"
        "    h = acquire()\n"
        "    g = h\n"
        "    close(g)\n"
    )
    assert issues == []


def test_typestate_loop_close_inside_loop_is_clean():
    issues = run_machine(
        "def f(items):\n"
        "    for _ in items:\n"
        "        h = acquire()\n"
        "        use(h)\n"
        "        close(h)\n"
    )
    assert issues == []


# ----------------------------------------------------------------------
# Project index
# ----------------------------------------------------------------------


def make_index(modules):
    """modules: {dotted_name: source} -> ProjectIndex."""
    summaries = []
    for dotted, source in modules.items():
        path = Path("src") / Path(*dotted.split(".")).with_suffix(".py")
        summaries.append(summarize(path, source, dotted))
    return ProjectIndex(summaries)


def test_import_closure_follows_from_imports():
    index = make_index(
        {
            "pkg.entry": "from pkg.mid import go\n\ndef run():\n    go()\n",
            "pkg.mid": "from pkg.leaf import deep\n\ndef go():\n    deep()\n",
            "pkg.leaf": "def deep():\n    return 1\n",
            "pkg.island": "def alone():\n    return 2\n",
        }
    )
    reachable = index.reachable_modules(["pkg.entry"])
    assert {"pkg.entry", "pkg.mid", "pkg.leaf"} <= reachable
    assert "pkg.island" not in reachable


def test_call_graph_closure_crosses_modules():
    index = make_index(
        {
            "pkg.entry": "from pkg.mid import go\n\ndef run():\n    go()\n",
            "pkg.mid": "from pkg.leaf import deep\n\ndef go():\n    deep()\n",
            "pkg.leaf": "def deep():\n    return 1\n\ndef unused():\n    return 2\n",
        }
    )
    entries = index.entry_functions("pkg.entry")
    reached = index.reachable_functions(entries)
    names = {fn.qualname for fn in reached.values()}
    assert {"run", "go", "deep"} <= names
    assert "unused" not in names


def test_method_resolution_through_cross_module_inheritance():
    index = make_index(
        {
            "pkg.base": (
                "class Base:\n"
                "    def to_dict(self):\n"
                "        return {}\n"
            ),
            "pkg.child": (
                "from pkg.base import Base\n"
                "\n"
                "class Child(Base):\n"
                "    def extra(self):\n"
                "        return 1\n"
            ),
        }
    )
    child = index.by_module["pkg.child"].classes["Child"]
    found = index.find_method(child, "to_dict")
    assert found is not None
    assert found.qualname == "Base.to_dict"
    assert found.module == "pkg.base"


def test_summaries_are_cached_by_content_hash():
    path = Path("src/pkg/mod.py")
    source = "def f():\n    return 1\n"
    first = summarize(path, source, "pkg.mod")
    second = summarize(path, source, "pkg.mod")
    assert first is second  # same content: cache hit
    third = summarize(path, source + "\n# changed\n", "pkg.mod")
    assert third is not first


# ----------------------------------------------------------------------
# The solver itself, on a custom lattice
# ----------------------------------------------------------------------


class SeenNames(ForwardAnalysis):
    """Set-union lattice: names assigned on some path so far."""

    def initial(self):
        return frozenset()

    def join(self, states):
        merged = frozenset()
        for s in states:
            merged |= s
        return merged

    def transfer(self, block, state):
        out = set(state)
        for s in block.statements:
            if isinstance(s, ast.Assign):
                out.update(t.id for t in s.targets if isinstance(t, ast.Name))
        return frozenset(out)


def test_forward_solver_reaches_fixpoint_on_loops():
    _fn, cfg = fn_cfg(
        "def f(n):\n"
        "    a = 0\n"
        "    while n:\n"
        "        b = a\n"
        "        n = n - 1\n"
        "    return a\n"
    )
    in_states, out_states = SeenNames().solve(cfg)
    assert set(in_states) == set(out_states)
    # The loop's in-loop definitions flow around the back edge and out.
    assert out_states[cfg.exit] == frozenset({"a", "b", "n"})
