"""Engine-level lint tests: tree walking, project finalizers, select
validation, self-hosting on the real codebase, and CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.lint import REGISTRY, lint_paths, lint_source
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# Engine behavior
# ----------------------------------------------------------------------


def test_select_rejects_unknown_rule_id():
    with pytest.raises(ValueError, match="LNT999"):
        lint_source("x = 1\n", select=["LNT999"])


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    violations, errors = lint_paths([bad])
    assert violations == []
    assert len(errors) == 1
    assert "broken.py" in errors[0]


def test_walker_skips_fixture_and_pycache_dirs(tmp_path):
    (tmp_path / "fixtures").mkdir()
    (tmp_path / "fixtures" / "planted.py").write_text("import numpy as np\nnp.random.normal()\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "cached.py").write_text("import random\nrandom.random()\n")
    (tmp_path / "ok.py").write_text("x = 1\n")
    violations, errors = lint_paths([tmp_path])
    assert violations == []
    assert errors == []


def test_violation_format_is_path_line_col_rule():
    (violation,) = lint_source("import random\nx = random.random()\n", path="src/m.py")
    text = violation.format()
    assert text.startswith("src/m.py:2:")
    assert "LNT001" in text


def test_self_hosting_zero_findings_on_real_tree():
    violations, errors = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert errors == []
    assert violations == []


# ----------------------------------------------------------------------
# LNT005 project finalizer (docs/api.md cross-check) on a mini-project
# ----------------------------------------------------------------------


def make_project(tmp_path, doc_sig="(data, strict=False)", code_params=("data", "strict")):
    (tmp_path / "pyproject.toml").write_text('[project]\nname = "mini"\n')
    docs = tmp_path / "docs"
    docs.mkdir()
    docs.joinpath("api.md").write_text(f"# API\n\n- `repro.mini.Thing.from_dict{doc_sig}`\n")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    args = ", ".join(code_params)
    pkg.joinpath("mini.py").write_text(
        "class Thing:\n"
        "    @classmethod\n"
        f"    def from_dict(cls, {args}):\n"
        "        return cls()\n"
    )
    return tmp_path


def test_lnt005_finalizer_clean_when_docs_match(tmp_path):
    root = make_project(tmp_path)
    violations, errors = lint_paths([root / "src"], select=["LNT005"])
    assert errors == []
    assert violations == []


def test_lnt005_finalizer_flags_signature_drift(tmp_path):
    root = make_project(tmp_path, doc_sig="(data, bogus_arg)")
    violations, errors = lint_paths([root / "src"], select=["LNT005"])
    assert errors == []
    assert [v.rule_id for v in violations] == ["LNT005"]
    (violation,) = violations
    assert "from_dict" in violation.message
    assert "bogus_arg" in violation.message
    assert violation.path.endswith("docs/api.md")


def test_lnt005_finalizer_flags_factory_missing_from_code(tmp_path):
    root = make_project(tmp_path)
    api = root / "docs" / "api.md"
    api.write_text(api.read_text() + "- `repro.mini.Thing.from_json(text)`\n")
    violations, _ = lint_paths([root / "src"], select=["LNT005"])
    assert any("from_json" in v.message for v in violations)


def test_lnt005_flags_undocumented_from_config(tmp_path):
    root = make_project(tmp_path)
    farm = root / "src" / "repro" / "farm.py"
    farm.write_text(
        "class Farm:\n"
        "    @classmethod\n"
        "    def from_config(cls, config):\n"
        "        return cls()\n"
    )
    violations, errors = lint_paths([root / "src"], select=["LNT005"])
    assert errors == []
    (violation,) = violations
    assert "repro.farm.Farm.from_config" in violation.message
    assert "not documented" in violation.message
    assert violation.path.endswith("farm.py")


def test_lnt005_documented_from_config_is_clean(tmp_path):
    root = make_project(tmp_path)
    farm = root / "src" / "repro" / "farm.py"
    farm.write_text(
        "class Farm:\n"
        "    @classmethod\n"
        "    def from_config(cls, config):\n"
        "        return cls()\n"
    )
    api = root / "docs" / "api.md"
    api.write_text(api.read_text() + "- `repro.farm.Farm.from_config(config)`\n")
    violations, errors = lint_paths([root / "src"], select=["LNT005"])
    assert errors == []
    assert violations == []


def test_lnt005_private_from_config_not_required_in_docs(tmp_path):
    root = make_project(tmp_path)
    hidden = root / "src" / "repro" / "_internal.py"
    hidden.write_text(
        "class Helper:\n"
        "    @classmethod\n"
        "    def from_config(cls, config):\n"
        "        return cls()\n"
        "\n"
        "class _Private:\n"
        "    @classmethod\n"
        "    def from_config(cls, config):\n"
        "        return cls()\n"
    )
    violations, errors = lint_paths([root / "src"], select=["LNT005"])
    assert errors == []
    assert violations == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "LNT" not in capsys.readouterr().out


def test_cli_exit_one_with_rule_id_and_location(tmp_path, capsys):
    planted = tmp_path / "planted.py"
    planted.write_text("import random\nx = random.random()\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "LNT001" in out
    assert "planted.py:2" in out


def test_cli_exit_two_on_missing_path(capsys):
    assert main(["definitely/not/a/path"]) == 2


def test_cli_exit_two_on_unknown_select(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("x = 1\n")
    assert main(["--select", "LNT999", str(tmp_path)]) == 2


def test_cli_json_output(tmp_path, capsys):
    planted = tmp_path / "planted.py"
    planted.write_text("import random\nx = random.random()\n")
    assert main(["--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "LNT001"
    assert payload[0]["line"] == 2


def test_cli_list_rules_covers_registry(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in REGISTRY:
        assert rule_id in out
