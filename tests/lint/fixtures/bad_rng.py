"""LNT001 fixture: every flavour of unseeded / global RNG call."""

import random

import numpy as np
from numpy.random import default_rng, standard_normal


def draw():
    a = np.random.normal(0.0, 1.0, 8)  # global numpy RNG          (line 10)
    rng = np.random.default_rng()  # argless default_rng           (line 11)
    b = random.random()  # global stdlib RNG                       (line 12)
    c = default_rng()  # argless from-import                       (line 13)
    d = standard_normal(4)  # global via from-import               (line 14)
    e = random.Random()  # argless stdlib constructor              (line 15)
    return a, rng, b, c, d, e
