"""LNT002 fixture: metric names the taxonomy does not declare."""


def run(tracer, reason):
    tracer.count("errors.pipline.decode.exception")  # typo'd family  (line 5)
    tracer.gauge("detect.scor", 1.0)  # unknown gauge                 (line 6)
    tracer.count(f"errors.bogus.{reason}")  # bad f-string prefix     (line 7)
    with tracer.span("not_a_stage"):  # undeclared span               (line 8)
        pass
    tracer.count("errors.pipeline.decode.made_up")  # bad placeholder (line 10)
