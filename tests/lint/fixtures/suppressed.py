"""Suppression-comment fixture: violations silenced line- and file-wide."""
# repro-lint: disable-file=LNT006

import numpy as np


def sentinel(frac, work):
    if frac == 0.25:  # repro-lint: disable=LNT003
        return 1
    if frac == 0.5:  # repro-lint: disable=all
        return 2
    try:
        work()
    except Exception:  # silenced by the disable-file above
        pass
    return np.random.normal()  # LNT001 still fires: not suppressed
