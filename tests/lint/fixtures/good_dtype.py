"""LNT004 fixture: contracted buffers that stay in their lane."""

import numpy as np

from repro.utils.contracts import array_contract


@array_contract(x="(n) complex64", y="(n) complex128")
def stay_narrow(x, y):
    a = x.astype(np.complex64)  # same-width astype is fine
    b = np.asarray(y, dtype=np.complex128)  # y is contracted wide already
    c = np.abs(x).astype(np.float32)  # derived value, not the parameter
    return a, b, c


def no_contract(x):
    return x.astype(np.complex128)  # undeclared function: out of scope
