"""LNT001 fixture: every draw is seeded or explicitly threaded."""

import random

import numpy as np
from numpy.random import PCG64, default_rng


def draw(seed, rng):
    a = np.random.default_rng(seed).normal(0.0, 1.0, 8)
    gen = np.random.Generator(np.random.PCG64(seed))
    b = default_rng(seed).integers(0, 2, 4)
    c = PCG64(seed)
    d = random.Random(seed).random()
    e = rng.normal(0.0, 1.0, 8)  # a threaded Generator is the idiom
    return a, gen, b, c, d, e
