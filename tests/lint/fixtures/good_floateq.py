"""LNT003 fixture: tolerance comparisons and non-float equality."""

import numpy as np

_EPS = 1e-12


def branch(frac, x, n):
    if abs(frac) < _EPS:
        return 1
    if np.isclose(x, 2.5):
        return 2
    if n == 0:  # int literal: exact equality is fine
        return 3
    return frac < 0.5  # ordering against a float literal is fine
