"""LNT004 fixture: widening ops on contracted narrow buffers."""

import numpy as np

from repro.utils.contracts import array_contract


@array_contract(x="(n_tags, n_chips) complex64", w="(n_chips) float32")
def widen(x, w):
    a = x.astype(np.complex128)  # widens complex64            (line 10)
    b = np.asarray(w, dtype=np.float64)  # widens float32      (line 11)
    c = np.array(x, dtype="complex128")  # string dtype        (line 12)
    d = np.asarray(w, dtype=complex)  # builtin alias          (line 13)
    return a, b, c, d
