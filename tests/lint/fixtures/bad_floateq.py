"""LNT003 fixture: exact ==/!= against float literals."""


def branch(frac, x):
    if frac == 0.0:  # (line 5)
        return 1
    if x != 2.5:  # (line 7)
        return 2
    return -1.5 == frac  # negated literal  (line 9)
