"""LNT006 fixture: narrow catches and recording broad handlers."""


def careful(work, log, failures):
    try:
        work()
    except ValueError:
        pass  # narrow type: the swallow is a deliberate, bounded choice
    try:
        work()
    except Exception as exc:  # broad but *recorded*: allowed
        failures.append(exc)
        log(str(exc))
