"""LNT002 fixture: declared names, checkable f-strings, non-metric `.count`."""


def run(tracer, reason, kind):
    tracer.count("round.frames_sent")
    tracer.count(f"errors.fault.{kind}")
    tracer.count(f"decode.{reason}")
    tracer.gauge("tag.snr_db", 3.0)
    with tracer.span("frame_sync"):
        pass
    text = "a.b.c"
    dots = text.count(".")  # str.count is not a metric call
    spans = [(0, 1)]
    return dots, spans[0].count(0)
