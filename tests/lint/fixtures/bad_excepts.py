"""LNT006 fixture: blanket exception swallowing."""


def risky(work):
    try:
        work()
    except:  # bare                                             (line 7)
        pass
    try:
        work()
    except Exception:  # broad + silent                         (line 11)
        pass
    try:
        work()
    except Exception:  # broad + ellipsis-only body              (line 15)
        ...
