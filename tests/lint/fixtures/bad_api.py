"""LNT005 fixture: ``__all__`` exporting a name the module never binds."""

__all__ = ["real_thing", "phantom"]  # `phantom` does not exist  (line 3)


def real_thing():
    return 1
