"""LNT012 fixture: helpers that widen (or keep) a narrow buffer."""

import numpy as np

from repro.utils.contracts import array_contract


def widen_helper(x):
    return x.astype(np.complex128)


@array_contract(q="(n_samples) complex128")
def wide_contract(q):
    return q


@array_contract(q="(n_samples) complex64")
def narrow_contract(q):
    return q


def keep_narrow(x):
    return np.abs(x).astype(np.float32)
