"""LNT012 fixture: contracted buffers flowing into another module.

Each bad call is clean under the per-file rule (LNT004): the contract
is here, the widening is in ``helpers`` -- only following the call
edge exposes it.
"""

from repro.dsp.helpers import keep_narrow, narrow_contract, wide_contract, widen_helper
from repro.utils.contracts import array_contract


@array_contract(x="(n_samples) complex64")
def bad_body(x):
    return widen_helper(x)  # helper widens x in its body


@array_contract(x="(n_samples) complex64")
def bad_contract(x):
    return wide_contract(x)  # callee re-declares the param wider


@array_contract(x="(n_samples) complex64")
def good_narrow(x):
    return narrow_contract(x)


@array_contract(x="(n_samples) complex64")
def good_abs(x):
    return keep_narrow(x)


@array_contract(x="(n_samples) complex64")
def tolerated(x):
    return widen_helper(x)  # repro-lint: disable=LNT012
