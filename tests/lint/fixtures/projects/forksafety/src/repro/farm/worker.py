"""LNT007 fixture: the fork boundary module of a mini farm."""

from repro.farm.state import fresh_rng, remember


def worker_main(cmd_queue):
    while True:
        cmd = cmd_queue.get(timeout=1.0)
        if cmd is None:
            break
        remember(cmd)
        fresh_rng(cmd)
