"""LNT007 fixture: fork hazards in a module the worker imports.

Nothing in this file is a violation *on its own* -- it only becomes
one because ``repro.farm.worker`` imports it, which a per-file rule
cannot see.
"""

from numpy.random import default_rng

_LOG = open("decode.log", "a")  # live handle duplicated by fork
_RNG = default_rng()  # cloned generator: workers replay one stream
_MEMO = open("memo.bin", "rb")  # repro-lint: disable=LNT007
_SEEN = {}
_SLOT_BYTES = 4096  # plain constant: fine


def remember(cmd):
    _SEEN[cmd] = True  # post-fork divergence: parent never sees it


def forget_local(cmd):
    _SEEN = {}  # local shadow, not the module global
    _SEEN[cmd] = False
    return _SEEN


def fresh_rng(seed):
    return default_rng(seed)  # constructed per call: fork-safe
