"""LNT007 fixture: same hazards, but no path from the fork boundary.

``repro.farm.worker`` never imports this module, so its module-level
handle and global mutation are parent-only and must not be flagged.
"""

_REPORT = open("report.txt", "w")
_TOTALS = {}


def tally(key):
    _TOTALS[key] = _TOTALS.get(key, 0) + 1
