"""LNT009 fixture: the serializer half of a cross-module pair."""


class BaseState:
    def __init__(self):
        self.position = 0
        self.gain = 1.0

    def to_dict(self):
        return {
            "format": "state-v1",  # envelope key: exempt
            "position": self.position,
            "gain": self.gain,
            "debug_name": repr(self),  # nobody restores this
        }
