"""LNT009 fixture: the restore half, in a different module.

``StreamState`` inherits ``to_dict`` from ``BaseState``; only the
cross-module MRO can pair it with this ``from_dict``.
"""

from repro.state.base import BaseState


class StreamState(BaseState):
    @classmethod
    def from_dict(cls, record):
        out = cls()
        out.position = record["position"]
        out.gain = record["gain"]
        return out


class RecState:
    def __init__(self):
        self.position = 0
        self.rate = 0.0

    def to_records(self):
        return [{"position": self.position}]

    @classmethod
    def from_records(cls, records):
        out = cls()
        out.position = records[0]["position"]
        out.rate = records[0]["rate"]  # never written by to_records
        return out


class OpenState:
    def to_json(self):
        return {"alpha": 1, "beta": 2}

    @classmethod
    def from_json(cls, record):
        out = cls()
        for key, value in record.items():  # dynamic reader: open side
            setattr(out, key, value)
        return out


class NoisyState:
    def to_dict(self):  # repro-lint: disable=LNT009
        return {"a": 1, "zombie": 2}

    @classmethod
    def from_dict(cls, record):
        out = cls()
        out.a = record["a"]
        return out
