"""LNT008 fixture: the slot-protocol class, defined apart from its users."""


class ShmRing:
    def __init__(self, slots):
        self.slots = slots

    def claim(self):
        return 0

    def write(self, slot, chunk):
        return len(chunk)

    def view(self, slot, n):
        return None

    def release(self, slot):
        pass

    def close(self):
        pass

    def unlink(self):
        pass
