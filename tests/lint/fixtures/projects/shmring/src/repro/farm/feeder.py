"""LNT008 fixture: slot lifecycle misuse across the class boundary.

The ring variable is called ``buf`` on purpose: the rule can only tell
it is a ring by resolving ``ShmRing`` through the import, which a
single-file pass cannot do.
"""

from repro.farm.ring import ShmRing


def leaky(chunk, flag):
    buf = ShmRing(4)
    s = buf.claim()
    buf.write(s, chunk)
    if flag:
        buf.release(s)
    # falls off with the slot still 'written' when flag is False


def double_release(chunk):
    buf = ShmRing(2)
    s = buf.claim()
    buf.write(s, chunk)
    buf.release(s)
    buf.release(s)


def use_after_release(chunk):
    buf = ShmRing(2)
    s = buf.claim()
    buf.release(s)
    buf.write(s, chunk)


def clean_release(chunk):
    buf = ShmRing(2)
    s = buf.claim()
    buf.write(s, chunk)
    buf.release(s)


def clean_handoff(chunk, out_q):
    buf = ShmRing(2)
    s = buf.claim()
    buf.write(s, chunk)
    out_q.put(("feed", s))  # ownership moved to the consumer


def clean_branches(chunk, flag):
    buf = ShmRing(2)
    s = buf.claim()
    if flag:
        buf.write(s, chunk)
        buf.release(s)
    else:
        buf.release(s)


def tolerated(chunk):  # repro-lint: disable=LNT008
    buf = ShmRing(2)
    s = buf.claim()
    buf.write(s, chunk)


def bad_order(ring):
    ring.unlink()
    ring.close()


def good_order(ring):
    ring.close()
    ring.unlink()
