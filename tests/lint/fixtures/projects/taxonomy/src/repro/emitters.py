"""LNT010 fixture: emissions in a module far from the taxonomy."""

from repro.obs.taxonomy import C, G


def report(tracer, n):
    tracer.count(C.DECODED, n)
    tracer.gauge(G.BACKLOG, n)
    tracer.count("decode.frames", n)  # pasted literal of C.DECODED
    tracer.count("decode.other", n)  # no constant matches: LNT002's job
    tracer.gauge("farm.backlog", n)  # repro-lint: disable=LNT010
