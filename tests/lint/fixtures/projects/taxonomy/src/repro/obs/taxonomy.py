"""LNT010 fixture: a miniature metric taxonomy."""


class C:
    DECODED = "decode.frames"
    GHOST = "decode.ghost"  # declared, never emitted anywhere


class G:
    BACKLOG = "farm.backlog"
