"""LNT011 fixture: a worker loop outside the farm's call graph."""


def forward(events_queue, sink):
    while True:
        item = events_queue.get()  # while True: can never see shutdown
        if item is None:
            break
        sink.append(item)


def forward_tolerated(events_queue, sink):
    while True:
        item = events_queue.get()  # repro-lint: disable=LNT011
        if item is None:
            break
        sink.append(item)


def collect_once(events_queue):
    return events_queue.get()  # not reachable, not in a worker loop
