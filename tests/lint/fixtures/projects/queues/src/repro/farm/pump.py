"""LNT011 fixture: helpers the worker reaches only via the call graph."""


def next_command(cmd_queue):
    return cmd_queue.get()  # unbounded: a dead farm hangs the worker


def next_command_polled(cmd_queue):
    return cmd_queue.get(timeout=0.5)


def peek_command(cmd_queue):
    return cmd_queue.get_nowait()


def stop_pump(cmd_queue):
    return cmd_queue.get()  # shutdown path: blocking is the contract
