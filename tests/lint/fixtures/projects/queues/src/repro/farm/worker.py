"""LNT011 fixture: the worker entry whose helpers must stay polled."""

from repro.farm.pump import next_command


def worker_main(cmd_queue, result_queue):
    while True:
        cmd = next_command(cmd_queue)
        if cmd is None:
            break
        result_queue.put(cmd)
