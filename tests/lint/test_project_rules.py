"""Mini-project fixtures for the cross-module rules (LNT007-LNT012).

Each project under ``tests/lint/fixtures/projects/`` is a tiny
``src/repro/...`` tree whose violations span two modules (or a
lifecycle path) -- none of them is detectable by a per-file pass, so
these tests fail if the project index / typestate engine stops
resolving across files.  The trees are copied to ``tmp_path`` before
linting: under ``tests/`` they would be classified as test files,
which every one of these rules exempts.
"""

import shutil
from pathlib import Path

from repro.lint import lint_paths

PROJECTS = Path(__file__).parent / "fixtures" / "projects"


def lint_project(name, tmp_path, select):
    target = tmp_path / name
    shutil.copytree(PROJECTS / name, target)
    violations, errors = lint_paths([target], select=select)
    assert errors == []
    return violations


def by_file_line(violations):
    return sorted((Path(v.path).name, v.line, v.message) for v in violations)


# ----------------------------------------------------------------------
# LNT007 fork-safety
# ----------------------------------------------------------------------


def test_lnt007_flags_hazards_only_in_the_fork_closure(tmp_path):
    violations = lint_project("forksafety", tmp_path, select=["LNT007"])
    found = by_file_line(violations)
    files = {f for f, _line, _msg in found}
    # All findings are in the module the worker imports...
    assert files == {"state.py"}
    # ...never in the structurally identical module outside the closure.
    assert all("offline.py" not in f for f, _line, _msg in found)
    messages = [msg for _f, _line, msg in found]
    assert any("_LOG" in m and "live handle" in m for m in messages)
    assert any("_RNG" in m and "RNG" in m for m in messages)
    assert any("_SEEN" in m and "remember" in m for m in messages)
    assert len(found) == 3


def test_lnt007_suppression_and_local_shadow_are_respected(tmp_path):
    violations = lint_project("forksafety", tmp_path, select=["LNT007"])
    messages = " ".join(v.message for v in violations)
    assert "_MEMO" not in messages  # line-suppressed handle
    assert "forget_local" not in messages  # local shadow, not the global
    assert "fresh_rng" not in messages  # per-call construction is safe


# ----------------------------------------------------------------------
# LNT008 ShmRing slot typestate
# ----------------------------------------------------------------------


def test_lnt008_tracks_slots_through_the_imported_ring_class(tmp_path):
    violations = lint_project("shmring", tmp_path, select=["LNT008"])
    by_msg = {v.message: v for v in violations}
    leaks = [m for m in by_msg if "can leave `leaky`" in m]
    assert leaks and "'written'" in leaks[0]
    assert any("already be released" in m for m in by_msg)
    assert any("used ('write') after release" in m for m in by_msg)
    assert any("unlink()` before" in m for m in by_msg)
    assert len(violations) == 4


def test_lnt008_accepts_release_handoff_and_suppression(tmp_path):
    violations = lint_project("shmring", tmp_path, select=["LNT008"])
    messages = " ".join(v.message for v in violations)
    for clean_fn in ("clean_release", "clean_handoff", "clean_branches", "good_order"):
        assert clean_fn not in messages
    assert "tolerated" not in messages  # leak suppressed on the def line


# ----------------------------------------------------------------------
# LNT009 checkpoint symmetry
# ----------------------------------------------------------------------


def test_lnt009_pairs_writer_and_reader_across_modules(tmp_path):
    violations = lint_project("checkpoint", tmp_path, select=["LNT009"])
    found = by_file_line(violations)
    # Written-but-unread: flagged at the base-class writer.
    assert any(
        f == "base.py" and "debug_name" in msg and "from_dict" in msg
        for f, _line, msg in found
    )
    # Read-but-unwritten: flagged at the reader.
    assert any(f == "child.py" and "'rate'" in msg for f, _line, msg in found)
    assert len(found) == 2


def test_lnt009_envelope_dynamic_and_suppressed_sides_are_quiet(tmp_path):
    violations = lint_project("checkpoint", tmp_path, select=["LNT009"])
    messages = " ".join(v.message for v in violations)
    assert "format" not in messages  # envelope key is exempt
    assert "alpha" not in messages and "beta" not in messages  # dynamic reader
    assert "zombie" not in messages  # suppressed writer


# ----------------------------------------------------------------------
# LNT010 taxonomy coverage
# ----------------------------------------------------------------------


def test_lnt010_unreferenced_constant_and_pasted_literal(tmp_path):
    violations = lint_project("taxonomy", tmp_path, select=["LNT010"])
    found = by_file_line(violations)
    assert any(
        f == "taxonomy.py" and "C.GHOST" in msg and "never" in msg
        for f, _line, msg in found
    )
    assert any(
        f == "emitters.py" and "C.DECODED" in msg and "duplicates" in msg
        for f, _line, msg in found
    )
    assert len(found) == 2


def test_lnt010_referenced_constants_and_foreign_literals_are_quiet(tmp_path):
    violations = lint_project("taxonomy", tmp_path, select=["LNT010"])
    messages = " ".join(v.message for v in violations)
    assert "G.BACKLOG" not in messages  # referenced + suppressed literal
    assert "decode.other" not in messages  # matches no constant


# ----------------------------------------------------------------------
# LNT011 queue discipline
# ----------------------------------------------------------------------


def test_lnt011_reaches_the_helper_through_the_call_graph(tmp_path):
    violations = lint_project("queues", tmp_path, select=["LNT011"])
    found = by_file_line(violations)
    assert any(
        f == "pump.py" and "next_command" in msg and "reachable" in msg
        for f, _line, msg in found
    )
    assert any(
        f == "telemetry.py" and "forward" in msg and "while True" in msg
        for f, _line, msg in found
    )
    assert len(found) == 2


def test_lnt011_polled_nowait_shutdown_and_suppressed_are_quiet(tmp_path):
    violations = lint_project("queues", tmp_path, select=["LNT011"])
    messages = " ".join(v.message for v in violations)
    assert "next_command_polled" not in messages
    assert "peek_command" not in messages
    assert "stop_pump" not in messages  # shutdown path: blocking is fine
    assert "collect_once" not in messages  # neither reachable nor looping
    assert "forward_tolerated" not in messages  # line suppression


# ----------------------------------------------------------------------
# LNT012 cross-module dtype flow
# ----------------------------------------------------------------------


def test_lnt012_follows_contracted_params_into_other_modules(tmp_path):
    violations = lint_project("dtypeflow", tmp_path, select=["LNT012"])
    found = by_file_line(violations)
    assert all(f == "frontend.py" for f, _line, _msg in found)  # call sites
    assert any("widens its `x`" in msg or "widens its `q`" in msg for _f, _l, msg in found)
    assert any("contracted complex128" in msg for _f, _l, msg in found)
    assert len(found) == 2


def test_lnt012_narrow_callees_and_suppression_are_quiet(tmp_path):
    violations = lint_project("dtypeflow", tmp_path, select=["LNT012"])
    lines = {v.line for v in violations}
    source = (PROJECTS / "dtypeflow" / "src" / "repro" / "dsp" / "frontend.py").read_text()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "narrow_contract(x)" in text or "keep_narrow(x)" in text or "disable" in text:
            assert lineno not in lines
