"""Fixture-driven tests for every lint rule: ids, line numbers, and
zero findings on the "good" twins.

The fixture files live under ``tests/lint/fixtures/`` -- a directory
the lint walker deliberately skips (they contain violations on
purpose) -- and are fed through :func:`repro.lint.lint_source` here
with ``is_test=False`` so the src-only rules run too.
"""

from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name, select=None):
    path = FIXTURES / name
    return lint_source(path.read_text(), path=str(path), is_test=False, select=select)


def ids_and_lines(violations):
    return [(v.rule_id, v.line) for v in violations]


# ----------------------------------------------------------------------
# LNT001 unseeded-rng
# ----------------------------------------------------------------------


def test_lnt001_flags_every_global_rng_call():
    found = ids_and_lines(lint_fixture("bad_rng.py", select=["LNT001"]))
    assert found == [
        ("LNT001", 10),  # np.random.normal
        ("LNT001", 11),  # np.random.default_rng()
        ("LNT001", 12),  # random.random()
        ("LNT001", 13),  # default_rng() from-import
        ("LNT001", 14),  # standard_normal from-import
        ("LNT001", 15),  # random.Random()
    ]


def test_lnt001_clean_on_seeded_idioms():
    assert lint_fixture("good_rng.py", select=["LNT001"]) == []


def test_lnt001_exempts_test_files():
    source = "import numpy as np\nx = np.random.normal()\n"
    assert lint_source(source, path="tests/test_x.py", is_test=True) == []
    assert len(lint_source(source, path="src/m.py", is_test=False)) == 1


# ----------------------------------------------------------------------
# LNT002 metric-taxonomy
# ----------------------------------------------------------------------


def test_lnt002_flags_undeclared_metric_names():
    found = ids_and_lines(lint_fixture("bad_taxonomy.py", select=["LNT002"]))
    assert found == [
        ("LNT002", 5),  # typo'd errors.pipline family
        ("LNT002", 6),  # unknown gauge
        ("LNT002", 7),  # f-string prefix matching no family
        ("LNT002", 8),  # undeclared span
        ("LNT002", 10),  # placeholder value outside the allowed set
    ]


def test_lnt002_message_names_the_bad_placeholder():
    violations = lint_fixture("bad_taxonomy.py", select=["LNT002"])
    by_line = {v.line: v.message for v in violations}
    assert "made_up" in by_line[10]


def test_lnt002_clean_on_declared_names_and_str_count():
    assert lint_fixture("good_taxonomy.py", select=["LNT002"]) == []


# ----------------------------------------------------------------------
# LNT003 float-equality
# ----------------------------------------------------------------------


def test_lnt003_flags_float_literal_equality():
    found = ids_and_lines(lint_fixture("bad_floateq.py", select=["LNT003"]))
    assert found == [("LNT003", 5), ("LNT003", 7), ("LNT003", 9)]


def test_lnt003_clean_on_tolerances_ints_and_orderings():
    assert lint_fixture("good_floateq.py", select=["LNT003"]) == []


def test_lnt003_exempts_test_files():
    source = "def check(x):\n    assert x == 0.5\n"
    assert lint_source(source, path="tests/test_x.py", is_test=True) == []


# ----------------------------------------------------------------------
# LNT004 dtype-discipline
# ----------------------------------------------------------------------


def test_lnt004_flags_widening_of_contracted_buffers():
    found = ids_and_lines(lint_fixture("bad_dtype.py", select=["LNT004"]))
    assert found == [
        ("LNT004", 10),  # x.astype(np.complex128)
        ("LNT004", 11),  # np.asarray(w, dtype=np.float64)
        ("LNT004", 12),  # np.array(x, dtype="complex128")
        ("LNT004", 13),  # np.asarray(w, dtype=complex)
    ]


def test_lnt004_clean_outside_narrow_contracts():
    assert lint_fixture("good_dtype.py", select=["LNT004"]) == []


# ----------------------------------------------------------------------
# LNT005 public-api (per-file __all__ pass; the docs cross-check is
# exercised project-wide in test_engine.py)
# ----------------------------------------------------------------------


def test_lnt005_flags_phantom_all_export():
    violations = lint_fixture("bad_api.py", select=["LNT005"])
    assert ids_and_lines(violations) == [("LNT005", 3)]
    assert "phantom" in violations[0].message


def test_lnt005_accepts_bound_exports():
    source = '__all__ = ["a", "B"]\n\na = 1\n\n\nclass B:\n    pass\n'
    assert lint_source(source, select=["LNT005"]) == []


# ----------------------------------------------------------------------
# LNT006 blanket-except
# ----------------------------------------------------------------------


def test_lnt006_flags_bare_and_silent_broad_excepts():
    found = ids_and_lines(lint_fixture("bad_excepts.py", select=["LNT006"]))
    assert found == [("LNT006", 7), ("LNT006", 11), ("LNT006", 15)]


def test_lnt006_clean_on_narrow_or_recording_handlers():
    assert lint_fixture("good_excepts.py", select=["LNT006"]) == []


def test_lnt006_sanctions_the_containment_sites():
    source = "def f(w):\n    try:\n        w()\n    except Exception:\n        pass\n"
    sanctioned = lint_source(
        source, path="src/repro/receiver/failures.py", is_test=False, select=["LNT006"]
    )
    assert sanctioned == []
    elsewhere = lint_source(
        source, path="src/repro/receiver/receiver.py", is_test=False, select=["LNT006"]
    )
    assert len(elsewhere) == 1


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------


def test_suppression_line_file_and_all():
    violations = lint_fixture("suppressed.py")
    # Only the unsuppressed LNT001 at the end survives.
    assert ids_and_lines(violations) == [("LNT001", 16)]


@pytest.mark.parametrize("rule_id", [f"LNT{n:03d}" for n in range(1, 13)])
def test_every_rule_is_registered_with_metadata(rule_id):
    from repro.lint import REGISTRY

    rule = REGISTRY[rule_id]
    assert rule.name
    assert rule.rationale
