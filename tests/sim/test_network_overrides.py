"""Tests for CbmaNetwork's override hooks and config plumbing."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.phy.impedance import ImpedanceCodebook, PAPER_TERMINATIONS, Termination
from repro.sim.network import CbmaConfig, CbmaNetwork


class TestChannelOverride:
    def _net(self):
        return CbmaNetwork(
            CbmaConfig(n_tags=2, seed=5), Deployment.linear(2, tag_to_rx=1.0)
        )

    def test_wrong_arity_rejected(self):
        net = self._net()
        with pytest.raises(ValueError):
            net.run_round(channel_override=([1.0 + 0j], [0.0]))

    def test_override_pins_offsets(self):
        net = self._net()
        net.run_round(channel_override=([1e-6, 1e-6], [1.25, 3.5]))
        assert net.tags[0].oscillator.offset_chips == 1.25
        assert net.tags[1].oscillator.offset_chips == 3.5

    def test_override_recorded_in_last_round_channel(self):
        net = self._net()
        amps = [2e-6 + 0j, 1e-6 + 1e-6j]
        net.run_round(channel_override=(amps, [0.0, 2.0]))
        recorded_amps, recorded_offsets = net.last_round_channel
        assert np.allclose(recorded_amps, amps)
        assert recorded_offsets == [0.0, 2.0]

    def test_zero_override_kills_link(self):
        net = self._net()
        metrics = net.run_round(channel_override=([0j, 0j], [0.0, 0.0]))
        assert metrics.frames_correct == 0


class TestConfigPlumbing:
    def test_drift_sigma_draws_per_tag_drift(self):
        cfg = CbmaConfig(n_tags=3, seed=9, drift_ppm_sigma=500.0)
        net = CbmaNetwork(cfg, Deployment.linear(3, tag_to_rx=1.0))
        net._draw_oscillators()
        drifts = [t.oscillator.drift_ppm for t in net.tags]
        assert any(d != 0.0 for d in drifts)
        assert len(set(drifts)) == 3

    def test_zero_drift_sigma_keeps_ideal_clocks(self):
        cfg = CbmaConfig(n_tags=2, seed=9)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        net._draw_oscillators()
        assert all(t.oscillator.drift_ppm == 0.0 for t in net.tags)

    def test_custom_user_threshold_reaches_detector(self):
        cfg = CbmaConfig(n_tags=2, seed=9, user_threshold=0.33)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        assert net.receiver.user_detector.threshold == 0.33

    def test_preamble_bits_reach_tags_and_receiver(self):
        cfg = CbmaConfig(n_tags=2, seed=9, preamble_bits=24)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))
        assert net.fmt.preamble_bits == 24
        assert net.tags[0].fmt.preamble_bits == 24
        assert net.receiver.fmt.preamble_bits == 24


class TestImpedanceCodebookVariants:
    def test_custom_reference_changes_gammas(self):
        short_ref = ImpedanceCodebook(PAPER_TERMINATIONS)
        matched_ref = ImpedanceCodebook(
            PAPER_TERMINATIONS,
            reference=Termination("match", resistance_ohm=50.0),
        )
        assert not np.allclose(
            short_ref.amplitude_gains(), matched_ref.amplitude_gains()
        )

    def test_two_element_codebook_usable_by_tag(self):
        from repro.codes import twonc_codes
        from repro.tag import Tag

        small = ImpedanceCodebook(PAPER_TERMINATIONS[:2])
        tag = Tag(0, twonc_codes(1, 32)[0], codebook=small)
        assert len(tag.codebook) == 2
        tag.step_impedance()
        tag.step_impedance()
        assert 0 <= tag.impedance_index < 2
