"""Unit tests for repro.sim.sweep."""

import pytest

from repro.sim.sweep import PointError, grid, sweep


def _fer_point(params, seed):
    """Module-level point function (picklable) used across tests."""
    from repro.channel.geometry import Deployment
    from repro.sim.network import CbmaConfig, CbmaNetwork

    cfg = CbmaConfig(n_tags=params["n_tags"], seed=seed)
    net = CbmaNetwork(cfg, Deployment.linear(params["n_tags"], tag_to_rx=params["d"]))
    return net.run_rounds(params.get("rounds", 5)).fer


def _echo_point(params, seed):
    return (params, seed)


class TestGrid:
    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y"])
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points

    def test_order_is_document_order(self):
        points = grid(a=[1, 2], b=[10, 20])
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}

    def test_empty_axes(self):
        assert grid() == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            grid(a=[])

    def test_generator_axis(self):
        """Generator/iterator axes are materialised, not crashed on."""
        points = grid(n=(i * 2 for i in range(3)), d=iter([1.0]))
        assert points == [
            {"n": 0, "d": 1.0},
            {"n": 2, "d": 1.0},
            {"n": 4, "d": 1.0},
        ]

    def test_range_and_map_axes(self):
        points = grid(a=range(2), b=map(str, [7]))
        assert points == [{"a": 0, "b": "7"}, {"a": 1, "b": "7"}]

    def test_empty_generator_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            grid(a=(x for x in ()))


class TestSweep:
    def test_results_in_order(self):
        points = grid(k=[0, 1, 2])
        results = sweep(_echo_point, points, seed=1)
        assert [r[0]["k"] for r in results] == [0, 1, 2]

    def test_per_point_seeds_differ(self):
        results = sweep(_echo_point, grid(k=[0, 1, 2]), seed=1)
        seeds = [r[1] for r in results]
        assert len(set(seeds)) == 3

    def test_seeds_reproducible(self):
        a = sweep(_echo_point, grid(k=[0, 1]), seed=7)
        b = sweep(_echo_point, grid(k=[0, 1]), seed=7)
        assert [r[1] for r in a] == [r[1] for r in b]

    def test_different_root_seed_changes_points(self):
        a = sweep(_echo_point, grid(k=[0]), seed=7)
        b = sweep(_echo_point, grid(k=[0]), seed=8)
        assert a[0][1] != b[0][1]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            sweep(_echo_point, grid(k=[0]), workers=0)

    def test_serial_simulation_sweep(self):
        points = grid(n_tags=[2], d=[1.0, 4.0])
        fers = sweep(_fer_point, points, seed=3)
        assert len(fers) == 2
        assert all(0.0 <= f <= 1.0 for f in fers)

    def test_parallel_matches_serial(self):
        """Worker processes must return identical results to serial."""
        points = grid(n_tags=[2], d=[1.0, 2.0])
        serial = sweep(_fer_point, points, seed=3)
        parallel = sweep(_fer_point, points, seed=3, workers=2)
        assert serial == parallel

    def test_unpicklable_point_fn_fails_fast(self):
        """A lambda with workers set must raise immediately, not hang."""
        with pytest.raises(TypeError, match="module level"):
            sweep(lambda p, s: s, grid(k=[0, 1]), workers=2)

    def test_unpicklable_point_fn_fine_serially(self):
        results = sweep(lambda p, s: p["k"], grid(k=[0, 1]))
        assert results == [0, 1]

    def test_invalid_chunksize(self):
        with pytest.raises(ValueError):
            sweep(_echo_point, grid(k=[0]), workers=1, chunksize=0)

    def test_chunksize_preserves_order_and_seeds(self):
        points = grid(k=[0, 1, 2, 3, 4])
        plain = sweep(_echo_point, points, seed=5, workers=2)
        chunked = sweep(_echo_point, points, seed=5, workers=2, chunksize=3)
        assert chunked == plain


def _flaky_point(params, seed):
    if params["k"] == 1:
        raise RuntimeError("boom at k=1")
    return params["k"] * 10


_CALLS = []


def _counting_point(params, seed):
    _CALLS.append(params["k"])
    return params["k"]


class TestContainment:
    def test_default_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            sweep(_flaky_point, grid(k=[0, 1, 2]))

    def test_contain_returns_full_grid(self):
        results = sweep(_flaky_point, grid(k=[0, 1, 2]), on_error="contain")
        assert len(results) == 3
        assert results[0] == 0 and results[2] == 20
        err = results[1]
        assert isinstance(err, PointError)
        assert err.index == 1
        assert err.error_type == "RuntimeError"
        assert "boom" in err.message
        assert "boom" in err.traceback

    def test_contain_works_in_parallel(self):
        results = sweep(_flaky_point, grid(k=[0, 1, 2]), workers=2, on_error="contain")
        assert isinstance(results[1], PointError)
        assert results[0] == 0 and results[2] == 20

    def test_invalid_on_error(self):
        with pytest.raises(ValueError):
            sweep(_echo_point, grid(k=[0]), on_error="explode")


class TestCheckpoint:
    def test_checkpoint_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        points = grid(k=[0, 1, 2])
        first = sweep(_counting_point, points, seed=4, checkpoint=path)
        resumed = sweep(_counting_point, points, seed=4, checkpoint=path)
        assert first == resumed == [0, 1, 2]

    def test_resume_skips_finished_points(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        points = grid(k=[0, 1, 2])
        _CALLS.clear()
        sweep(_counting_point, points, seed=4, checkpoint=path)
        assert _CALLS == [0, 1, 2]
        _CALLS.clear()
        sweep(_counting_point, points, seed=4, checkpoint=path)
        assert _CALLS == []  # everything served from the checkpoint

    def test_resume_reruns_only_failed_points_with_retry(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        points = grid(k=[0, 1, 2])
        contained = sweep(_flaky_point, points, on_error="contain", checkpoint=path)
        assert isinstance(contained[1], PointError)
        # Without retry_errors the failure is final.
        again = sweep(_flaky_point, points, on_error="contain", checkpoint=path)
        assert isinstance(again[1], PointError)
        # With retry_errors only the failed slot is recomputed; here a
        # fixed point function supplies the missing result.
        _CALLS.clear()
        healed = sweep(_counting_point, points, on_error="contain",
                       checkpoint=path, retry_errors=True)
        assert healed == [0, 1, 20]  # 0 and 20 come from the checkpoint
        assert _CALLS == [1]

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep(_echo_point, grid(k=[0, 1]), seed=4, checkpoint=path)
        with pytest.raises(ValueError, match="checkpoint"):
            sweep(_echo_point, grid(k=[0, 1]), seed=5, checkpoint=path)
        with pytest.raises(ValueError, match="checkpoint"):
            sweep(_echo_point, grid(k=[0, 1, 2]), seed=4, checkpoint=path)

    def test_parallel_checkpoint_matches_serial(self, tmp_path):
        points = grid(k=[0, 1, 2, 3])
        serial = sweep(_counting_point, points, seed=6)
        parallel = sweep(_counting_point, points, seed=6, workers=2,
                         checkpoint=tmp_path / "par.jsonl")
        assert parallel == serial

    def test_unserializable_result_names_the_point(self, tmp_path):
        with pytest.raises(TypeError, match="point #0"):
            sweep(lambda p, s: object(), grid(k=[0]),
                  checkpoint=tmp_path / "bad.jsonl")
