"""Unit tests for repro.sim.sweep."""

import pytest

from repro.sim.sweep import grid, sweep


def _fer_point(params, seed):
    """Module-level point function (picklable) used across tests."""
    from repro.channel.geometry import Deployment
    from repro.sim.network import CbmaConfig, CbmaNetwork

    cfg = CbmaConfig(n_tags=params["n_tags"], seed=seed)
    net = CbmaNetwork(cfg, Deployment.linear(params["n_tags"], tag_to_rx=params["d"]))
    return net.run_rounds(params.get("rounds", 5)).fer


def _echo_point(params, seed):
    return (params, seed)


class TestGrid:
    def test_cartesian_product(self):
        points = grid(a=[1, 2], b=["x", "y"])
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points

    def test_order_is_document_order(self):
        points = grid(a=[1, 2], b=[10, 20])
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}

    def test_empty_axes(self):
        assert grid() == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            grid(a=[])


class TestSweep:
    def test_results_in_order(self):
        points = grid(k=[0, 1, 2])
        results = sweep(_echo_point, points, seed=1)
        assert [r[0]["k"] for r in results] == [0, 1, 2]

    def test_per_point_seeds_differ(self):
        results = sweep(_echo_point, grid(k=[0, 1, 2]), seed=1)
        seeds = [r[1] for r in results]
        assert len(set(seeds)) == 3

    def test_seeds_reproducible(self):
        a = sweep(_echo_point, grid(k=[0, 1]), seed=7)
        b = sweep(_echo_point, grid(k=[0, 1]), seed=7)
        assert [r[1] for r in a] == [r[1] for r in b]

    def test_different_root_seed_changes_points(self):
        a = sweep(_echo_point, grid(k=[0]), seed=7)
        b = sweep(_echo_point, grid(k=[0]), seed=8)
        assert a[0][1] != b[0][1]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            sweep(_echo_point, grid(k=[0]), workers=0)

    def test_serial_simulation_sweep(self):
        points = grid(n_tags=[2], d=[1.0, 4.0])
        fers = sweep(_fer_point, points, seed=3)
        assert len(fers) == 2
        assert all(0.0 <= f <= 1.0 for f in fers)

    def test_parallel_matches_serial(self):
        """Worker processes must return identical results to serial."""
        points = grid(n_tags=[2], d=[1.0, 2.0])
        serial = sweep(_fer_point, points, seed=3)
        parallel = sweep(_fer_point, points, seed=3, workers=2)
        assert serial == parallel

    def test_unpicklable_point_fn_fails_fast(self):
        """A lambda with workers set must raise immediately, not hang."""
        with pytest.raises(TypeError, match="module level"):
            sweep(lambda p, s: s, grid(k=[0, 1]), workers=2)

    def test_unpicklable_point_fn_fine_serially(self):
        results = sweep(lambda p, s: p["k"], grid(k=[0, 1]))
        assert results == [0, 1]

    def test_invalid_chunksize(self):
        with pytest.raises(ValueError):
            sweep(_echo_point, grid(k=[0]), workers=1, chunksize=0)

    def test_chunksize_preserves_order_and_seeds(self):
        points = grid(k=[0, 1, 2, 3, 4])
        plain = sweep(_echo_point, points, seed=5, workers=2)
        chunked = sweep(_echo_point, points, seed=5, workers=2, chunksize=3)
        assert chunked == plain
