"""Focused unit tests for the experiment drivers beyond the smoke pass.

The smoke tests assert structure; these pin the contracts downstream
consumers (benchmarks, the report generator, the CLI) rely on:
deterministic outputs for a fixed seed, correct series alignment,
parameter plumbing, and a few cheap shape guarantees.
"""

import numpy as np
import pytest

from repro.sim.experiments import (
    ExperimentResult,
    bench_deployment,
    fig5_signal_field,
    fig8a_distance,
    fig8b_power,
    fig9b_pn_codes,
    fig11_asynchrony,
    fig12_working_conditions,
    table2_power_difference,
)
from repro.sim.experiments.common import BENCH_ROOM, build_network
from repro.sim.network import CbmaConfig


class TestCommonHelpers:
    def test_bench_deployment_within_room(self):
        dep = bench_deployment(4, rng=1)
        assert len(dep.tags) == 4
        assert all(BENCH_ROOM.contains(p) for p in dep.tags)

    def test_bench_deployment_deterministic(self):
        a = bench_deployment(3, rng=9)
        b = bench_deployment(3, rng=9)
        assert [(p.x, p.y) for p in a.tags] == [(p.x, p.y) for p in b.tags]

    def test_build_network_defaults(self):
        net = build_network(CbmaConfig(n_tags=2, seed=3))
        assert len(net.tags) == 2

    def test_experiment_result_defaults(self):
        r = ExperimentResult(experiment_id="x", x_label="p")
        assert r.x == []
        assert r.series == {}


class TestDriverContracts:
    def test_series_lengths_match_x(self):
        r = fig8b_power(tx_powers_dbm=(0.0, 20.0), tag_counts=(2, 3), rounds=6)
        for ys in r.series.values():
            assert len(ys) == len(r.x)

    def test_deterministic_with_seed(self):
        a = fig8a_distance(distances_m=(1.0,), tag_counts=(2,), rounds=8, seed=5)
        b = fig8a_distance(distances_m=(1.0,), tag_counts=(2,), rounds=8, seed=5)
        assert a.series == b.series

    def test_custom_tag_counts_label_series(self):
        r = fig8a_distance(distances_m=(1.0,), tag_counts=(3, 4), rounds=5)
        assert set(r.series) == {"3 tags", "4 tags"}

    def test_fig9b_family_parameter(self):
        r = fig9b_pn_codes(
            tag_counts=(2,), families=(("gold", 31),), rounds=5, n_groups=1
        )
        assert list(r.series) == ["gold-31"]

    def test_table2_pair_count(self):
        r = table2_power_difference(n_pairs=4, rounds=5)
        assert len(r.x) == 4
        assert len(r.series["error_rate"]) == 4

    def test_fig11_zero_delay_included(self):
        r = fig11_asynchrony(delays_chips=(0.0,), rounds=10)
        assert r.x == [0.0]
        assert len(r.series["error rate"]) == 1

    def test_fig12_condition_order(self):
        r = fig12_working_conditions(rounds=8)
        assert r.x[0] == "no interference"
        assert r.x[-1] == "OFDM excitation"

    def test_fig5_resolution_plumbed(self):
        r = fig5_signal_field(resolution=9)
        assert r.artifacts["field_dbm"].shape == (9, 9)

    def test_all_fers_are_probabilities(self):
        r = fig8b_power(tx_powers_dbm=(0.0, 20.0), tag_counts=(2,), rounds=6)
        for ys in r.series.values():
            assert all(0.0 <= y <= 1.0 for y in ys)
