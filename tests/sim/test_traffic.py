"""Unit tests for repro.sim.traffic."""

import numpy as np
import pytest

from repro.sim.traffic import BurstyArrivals, PeriodicArrivals, PoissonArrivals


class TestPoisson:
    def test_mean_rate(self):
        model = PoissonArrivals(rate_hz=100.0)
        rng = np.random.default_rng(0)
        counts = model.draw(1000, 0.1, rng)
        assert float(counts.mean()) == pytest.approx(10.0, rel=0.1)

    def test_zero_rate(self):
        counts = PoissonArrivals(0.0).draw(5, 1.0, np.random.default_rng(0))
        assert counts.sum() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0).draw(1, 1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).draw(1, -1.0)


class TestPeriodic:
    def test_one_per_period(self):
        model = PeriodicArrivals(period_s=1.0)
        total = np.zeros(4, dtype=np.int64)
        for _ in range(10):
            total += model.draw(4, 0.5)
        # 5 seconds elapsed -> 5 messages per tag.
        assert total.tolist() == [5, 5, 5, 5]

    def test_phases_staggered(self):
        model = PeriodicArrivals(period_s=1.0)
        counts = model.draw(4, 0.25)
        # Only the tag whose phase falls in the first quarter fires.
        assert counts.sum() == 1

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(period_s=0.0)


class TestBursty:
    def test_off_state_quiet(self):
        model = BurstyArrivals(burst_rate_hz=1000.0, p_on=0.0)
        counts = model.draw(10, 1.0, np.random.default_rng(1))
        assert counts.sum() == 0

    def test_bursts_cluster(self):
        model = BurstyArrivals(burst_rate_hz=100.0, p_on=0.5, p_off=0.5)
        rng = np.random.default_rng(2)
        windows = [model.draw(1, 0.1, rng)[0] for _ in range(200)]
        windows = np.array(windows)
        # Bimodal: some windows silent, active windows carry ~10.
        assert (windows == 0).any()
        assert windows.max() >= 5

    def test_state_persists_across_windows(self):
        model = BurstyArrivals(burst_rate_hz=50.0, p_on=1.0, p_off=0.0)
        rng = np.random.default_rng(3)
        first = model.draw(2, 0.2, rng)
        second = model.draw(2, 0.2, rng)
        # Once ON with p_off=0, every subsequent window is active.
        assert (second > 0).all() or (first > 0).all()

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, p_on=1.5)


class TestResetSemantics:
    """PeriodicArrivals leaked `_elapsed` phase between runs; these
    regression tests pin the explicit reset()/start_s contract."""

    def test_periodic_back_to_back_runs_identical_after_reset(self):
        model = PeriodicArrivals(period_s=1.0)
        first = [model.draw(4, 0.3).tolist() for _ in range(7)]
        model.reset()
        second = [model.draw(4, 0.3).tolist() for _ in range(7)]
        assert first == second

    def test_periodic_without_reset_leaks_phase(self):
        # The bug this guards against: a reused instance continues from
        # the prior run's window clock instead of time zero.
        model = PeriodicArrivals(period_s=1.0)
        first = model.draw(4, 0.25)
        second = model.draw(4, 0.25)
        assert first.tolist() != second.tolist()
        model.reset()
        assert model.draw(4, 0.25).tolist() == first.tolist()

    def test_periodic_explicit_window_is_stateless(self):
        model = PeriodicArrivals(period_s=1.0)
        model.draw(4, 0.6)  # advance the internal clock
        a = model.draw(4, 0.25, start_s=2.0)
        b = model.draw(4, 0.25, start_s=2.0)
        assert a.tolist() == b.tolist()
        # And the internal clock was not disturbed by explicit windows.
        model.reset()
        model.draw(4, 0.6)
        c = model.draw(4, 0.4)
        model.reset()
        model.draw(4, 0.6)
        model.draw(4, 0.25, start_s=5.0)
        d = model.draw(4, 0.4)
        assert c.tolist() == d.tolist()

    def test_periodic_explicit_windows_tile_like_stateful(self):
        # Window width exact in binary so the stateful accumulated
        # clock and the multiplied explicit starts are bit-identical.
        model = PeriodicArrivals(period_s=0.7)
        stateful = [model.draw(5, 0.25).tolist() for _ in range(10)]
        stateless = [
            model.draw(5, 0.25, start_s=i * 0.25).tolist() for i in range(10)
        ]
        assert stateful == stateless

    def test_bursty_back_to_back_runs_identical_after_reset(self):
        model = BurstyArrivals(burst_rate_hz=40.0, p_on=0.3, p_off=0.2)
        first = [model.draw(8, 0.2, np.random.default_rng(11)).tolist() for _ in range(5)]
        model.reset()
        second = [model.draw(8, 0.2, np.random.default_rng(11)).tolist() for _ in range(5)]
        # Same seed each window + reset occupancy => identical runs.
        assert first == second

    def test_poisson_reset_is_noop(self):
        model = PoissonArrivals(rate_hz=3.0)
        model.reset()  # must exist for the uniform traffic API
        counts = model.draw(4, 1.0, np.random.default_rng(0))
        assert counts.shape == (4,)


class TestDeterminism:
    """Same seed => identical arrival counts for every model."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PoissonArrivals(rate_hz=5.0),
            lambda: PeriodicArrivals(period_s=0.9),
            lambda: BurstyArrivals(burst_rate_hz=25.0, p_on=0.2, p_off=0.4),
        ],
        ids=["poisson", "periodic", "bursty"],
    )
    def test_same_seed_same_counts(self, factory):
        def run(seed):
            model = factory()
            rng = np.random.default_rng(seed)
            return [model.draw(16, 0.15, rng).tolist() for _ in range(12)]

        assert run(42) == run(42)
        # Sanity: total offered load is seed-sensitive for the random
        # models (periodic is deterministic by construction).
        if not isinstance(factory(), PeriodicArrivals):
            flat = lambda runs: [c for w in runs for c in w]  # noqa: E731
            assert flat(run(42)) != flat(run(43))

    def test_periodic_vectorised_matches_scalar_counting(self):
        # Cross-check the ceil-arithmetic against brute-force counting
        # of firing instants on a fine grid of windows.
        model = PeriodicArrivals(period_s=0.37)
        n_tags, window = 6, 0.11
        phases = [i * 0.37 / n_tags for i in range(n_tags)]
        for w in range(25):
            start, end = w * window, (w + 1) * window
            expect = []
            for ph in phases:
                k = 0
                count = 0
                while ph + k * 0.37 < end:
                    if ph + k * 0.37 >= start:
                        count += 1
                    k += 1
                expect.append(count)
            got = model.draw(n_tags, window, start_s=start).tolist()
            assert got == expect, f"window {w}"
