"""Unit tests for repro.sim.traffic."""

import numpy as np
import pytest

from repro.sim.traffic import BurstyArrivals, PeriodicArrivals, PoissonArrivals


class TestPoisson:
    def test_mean_rate(self):
        model = PoissonArrivals(rate_hz=100.0)
        rng = np.random.default_rng(0)
        counts = model.draw(1000, 0.1, rng)
        assert float(counts.mean()) == pytest.approx(10.0, rel=0.1)

    def test_zero_rate(self):
        counts = PoissonArrivals(0.0).draw(5, 1.0, np.random.default_rng(0))
        assert counts.sum() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0).draw(1, 1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).draw(1, -1.0)


class TestPeriodic:
    def test_one_per_period(self):
        model = PeriodicArrivals(period_s=1.0)
        total = np.zeros(4, dtype=np.int64)
        for _ in range(10):
            total += model.draw(4, 0.5)
        # 5 seconds elapsed -> 5 messages per tag.
        assert total.tolist() == [5, 5, 5, 5]

    def test_phases_staggered(self):
        model = PeriodicArrivals(period_s=1.0)
        counts = model.draw(4, 0.25)
        # Only the tag whose phase falls in the first quarter fires.
        assert counts.sum() == 1

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(period_s=0.0)


class TestBursty:
    def test_off_state_quiet(self):
        model = BurstyArrivals(burst_rate_hz=1000.0, p_on=0.0)
        counts = model.draw(10, 1.0, np.random.default_rng(1))
        assert counts.sum() == 0

    def test_bursts_cluster(self):
        model = BurstyArrivals(burst_rate_hz=100.0, p_on=0.5, p_off=0.5)
        rng = np.random.default_rng(2)
        windows = [model.draw(1, 0.1, rng)[0] for _ in range(200)]
        windows = np.array(windows)
        # Bimodal: some windows silent, active windows carry ~10.
        assert (windows == 0).any()
        assert windows.max() >= 5

    def test_state_persists_across_windows(self):
        model = BurstyArrivals(burst_rate_hz=50.0, p_on=1.0, p_off=0.0)
        rng = np.random.default_rng(3)
        first = model.draw(2, 0.2, rng)
        second = model.draw(2, 0.2, rng)
        # Once ON with p_off=0, every subsequent window is active.
        assert (second > 0).all() or (first > 0).all()

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, p_on=1.5)
