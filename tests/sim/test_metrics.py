"""Unit tests for repro.sim.metrics."""

import numpy as np
import pytest

from repro.sim.metrics import MetricsAccumulator, RoundOutcome, score_frame


def _outcome(tag_id=0, transmitted=True, detected=True, decoded=True, correct=True):
    return RoundOutcome(
        tag_id=tag_id,
        transmitted=transmitted,
        detected=detected,
        decoded=decoded,
        payload_correct=correct,
    )


class TestMetricsAccumulator:
    def test_empty_metrics(self):
        m = MetricsAccumulator()
        assert m.fer == 0.0
        assert m.prr == 1.0
        assert m.ber == 0.0
        assert m.goodput_bps == 0.0
        assert m.detection_rate == 0.0

    def test_fer_counts_missing_frames(self):
        m = MetricsAccumulator()
        m.record(_outcome(correct=True), payload_bits=128)
        m.record(_outcome(correct=False, decoded=False), payload_bits=128)
        assert m.fer == 0.5
        assert m.prr == 0.5

    def test_goodput(self):
        m = MetricsAccumulator()
        m.record(_outcome(), payload_bits=100)
        m.add_time(0.01)
        assert m.goodput_bps == pytest.approx(10_000)

    def test_false_decode_tracked_separately(self):
        m = MetricsAccumulator()
        m.record(_outcome(transmitted=False, decoded=True))
        assert m.false_decodes == 1
        assert m.frames_sent == 0

    def test_silent_tag_ignored(self):
        m = MetricsAccumulator()
        m.record(_outcome(transmitted=False, decoded=False))
        assert m.frames_sent == 0 and m.false_decodes == 0

    def test_per_tag_ack_ratio(self):
        m = MetricsAccumulator()
        m.record(_outcome(tag_id=3, correct=True))
        m.record(_outcome(tag_id=3, correct=False))
        m.record(_outcome(tag_id=4, correct=True))
        assert m.per_tag_ack_ratio(3) == 0.5
        assert m.per_tag_ack_ratio(4) == 1.0
        assert m.per_tag_ack_ratio(99) == 1.0  # never transmitted

    def test_detection_rate(self):
        m = MetricsAccumulator()
        m.record(_outcome(detected=True, decoded=False, correct=False))
        m.record(_outcome(detected=False, decoded=False, correct=False))
        assert m.detection_rate == 0.5

    def test_ber_accumulates(self):
        m = MetricsAccumulator()
        m.record(
            RoundOutcome(0, True, True, True, True, bit_errors=3, bits_compared=100)
        )
        m.record(
            RoundOutcome(0, True, True, True, True, bit_errors=1, bits_compared=100)
        )
        assert m.ber == pytest.approx(0.02)


class TestScoreFrame:
    def test_correct_decode(self):
        out = score_frame(0, b"abc", True, b"abc")
        assert out.payload_correct and out.decoded and out.transmitted

    def test_wrong_payload(self):
        out = score_frame(0, b"abc", True, b"xyz")
        assert out.decoded and not out.payload_correct

    def test_missed_frame(self):
        out = score_frame(0, b"abc", False, None)
        assert not out.decoded and not out.payload_correct

    def test_silent_tag(self):
        out = score_frame(0, None, False, None)
        assert not out.transmitted

    def test_bit_error_counting(self):
        raw = np.array([1, 0, 1, 1], dtype=np.uint8)
        true = np.array([1, 1, 1, 0], dtype=np.uint8)
        out = score_frame(0, b"a", True, b"a", raw_bits=raw, true_bits=true)
        assert out.bit_errors == 2
        assert out.bits_compared == 4

    def test_mismatched_bit_lengths_skipped(self):
        out = score_frame(
            0, b"a", True, b"a",
            raw_bits=np.zeros(4, dtype=np.uint8), true_bits=np.zeros(8, dtype=np.uint8),
        )
        assert out.bits_compared == 0
