"""Unit tests for repro.sim.network (CbmaConfig / CbmaNetwork)."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.mac.power_control import PowerController
from repro.sim.network import CbmaConfig, CbmaNetwork


class TestCbmaConfig:
    def test_frame_geometry(self):
        cfg = CbmaConfig(payload_bytes=16, preamble_bits=8)
        assert cfg.frame_bits() == 8 + 8 + 128 + 16
        assert cfg.payload_bits() == 128

    def test_frame_duration(self):
        cfg = CbmaConfig(payload_bytes=16, code_length=64, chip_rate_hz=1e6)
        assert cfg.frame_duration_s() == pytest.approx(160 * 64 / 1e6)

    def test_frame_format_preamble(self):
        cfg = CbmaConfig(preamble_bits=16)
        assert cfg.frame_format().preamble_bits == 16


class TestCbmaNetwork:
    def _net(self, n=2, seed=5, rounds=None, **kw):
        cfg = CbmaConfig(n_tags=n, seed=seed, **kw)
        return CbmaNetwork(cfg, Deployment.linear(n, tag_to_rx=1.0))

    def test_too_few_positions(self):
        cfg = CbmaConfig(n_tags=5)
        with pytest.raises(ValueError):
            CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0))

    def test_run_round_accumulates(self):
        net = self._net()
        m = net.run_rounds(3)
        assert m.frames_sent == 6  # 2 tags x 3 rounds

    def test_active_subset(self):
        net = self._net(n=3)
        m = net.run_rounds(2, active_ids=[1])
        assert m.frames_sent == 2
        assert set(m.per_tag_sent) == {1}

    def test_good_geometry_low_fer(self):
        net = self._net()
        m = net.run_rounds(25)
        assert m.fer < 0.25

    def test_reproducible_with_seed(self):
        a = self._net(seed=9).run_rounds(10).fer
        b = self._net(seed=9).run_rounds(10).fer
        assert a == b

    def test_different_seeds_differ(self):
        """Different seeds draw different channel realizations."""
        amps = []
        for s in (1, 2, 3):
            net = self._net(seed=s)
            net._draw_oscillators()
            amps.append(tuple(net._base_amplitudes()))
        assert len(set(amps)) == 3

    def test_fixed_offsets(self):
        cfg = CbmaConfig(n_tags=2, seed=1)
        net = CbmaNetwork(cfg, Deployment.linear(2, tag_to_rx=1.0), fixed_offsets_chips=[0.0, 2.5])
        net._draw_oscillators()
        assert net.tags[0].oscillator.offset_chips == 0.0
        assert net.tags[1].oscillator.offset_chips == 2.5

    def test_epoch_runner_returns_acks(self):
        net = self._net()
        acks = net.epoch_runner(net.tags, 5)
        assert set(acks) == {0, 1}
        assert all(0 <= v <= 5 for v in acks.values())

    def test_power_control_runs(self):
        net = self._net()
        result = net.run_power_control(PowerController(packets_per_epoch=4))
        assert result.epochs >= 1
        assert 0.0 <= result.final_fer <= 1.0

    def test_move_tag(self):
        cfg = CbmaConfig(n_tags=2, seed=1)
        dep = Deployment.linear(4, tag_to_rx=1.0)  # extra positions
        net = CbmaNetwork(cfg, dep)
        net.move_tag(0, 3)
        assert net.positions[0] == 3

    def test_move_tag_bounds(self):
        net = self._net()
        with pytest.raises(ValueError):
            net.move_tag(0, 99)

    def test_code_family_choice(self):
        net = self._net(code_family="gold", code_length=31)
        assert net.codes[0].size == 31

    def test_goodput_positive_when_frames_delivered(self):
        m = self._net().run_rounds(10)
        if m.frames_correct:
            assert m.goodput_bps > 0
