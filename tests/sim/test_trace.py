"""Unit tests for repro.sim.trace."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.sim.trace import ChannelTrace, TraceRound, record_trace, replay_trace


def _network(seed=4, n=3):
    return CbmaNetwork(CbmaConfig(n_tags=n, seed=seed), Deployment.linear(n, tag_to_rx=1.5))


class TestChannelTrace:
    def test_append_and_len(self):
        trace = ChannelTrace(n_tags=2)
        trace.append([1 + 0j, 0.5j], [0.0, 1.5])
        assert len(trace) == 1
        assert trace.rounds[0].n_tags == 2

    def test_append_wrong_arity(self):
        trace = ChannelTrace(n_tags=2)
        with pytest.raises(ValueError):
            trace.append([1 + 0j], [0.0])

    def test_round_powers(self):
        r = TraceRound(amplitudes=(3 + 4j, 1 + 0j), offsets_chips=(0.0, 0.0))
        assert np.allclose(r.powers(), [25.0, 1.0])

    def test_json_roundtrip(self, tmp_path):
        trace = ChannelTrace(n_tags=2, description="roundtrip")
        trace.append([1 + 2j, -0.5 + 0.25j], [0.0, 3.7])
        trace.append([0.1 + 0j, 0.2 + 0j], [1.0, 2.0])
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ChannelTrace.load(path)
        assert loaded.description == "roundtrip"
        assert len(loaded) == 2
        assert loaded.rounds[0].amplitudes == trace.rounds[0].amplitudes
        assert loaded.rounds[1].offsets_chips == trace.rounds[1].offsets_chips

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            ChannelTrace.from_dict({"format_version": 99, "n_tags": 1, "rounds": []})

    def test_power_matrix_shape(self):
        trace = ChannelTrace(n_tags=3)
        for _ in range(4):
            trace.append([1, 1, 1], [0, 0, 0])
        assert trace.power_matrix().shape == (4, 3)

    def test_mean_power_difference(self):
        trace = ChannelTrace(n_tags=2)
        trace.append([2.0, 1.0], [0, 0])  # powers 4, 1 -> diff 0.75
        assert trace.mean_power_difference() == pytest.approx(0.75)
        assert ChannelTrace(n_tags=2).mean_power_difference() == 0.0


class TestRecordReplay:
    def test_record_counts(self):
        net = _network()
        trace, metrics = record_trace(net, 6)
        assert len(trace) == 6
        assert metrics.frames_sent == 18

    def test_record_negative(self):
        with pytest.raises(ValueError):
            record_trace(_network(), -1)

    def test_replay_tag_count_mismatch(self):
        trace = ChannelTrace(n_tags=5)
        with pytest.raises(ValueError):
            replay_trace(_network(n=3), trace)

    def test_replay_is_deterministic_given_seed(self):
        net = _network(seed=4)
        trace, _ = record_trace(net, 5)
        dep = Deployment.linear(3, tag_to_rx=1.5)
        a = replay_trace(CbmaNetwork(CbmaConfig(n_tags=3, seed=77), dep), trace)
        b = replay_trace(CbmaNetwork(CbmaConfig(n_tags=3, seed=77), dep), trace)
        assert a.frames_correct == b.frames_correct
        assert a.fer == b.fer

    def test_replay_uses_trace_channel(self):
        """A trace with zero amplitudes must produce total loss."""
        net = _network(seed=1)
        trace = ChannelTrace(n_tags=3)
        for _ in range(4):
            trace.append([0j, 0j, 0j], [0.0, 0.0, 0.0])
        metrics = replay_trace(net, trace)
        assert metrics.frames_correct == 0

    def test_last_round_channel_exposed(self):
        net = _network()
        net.run_round()
        amps, offsets = net.last_round_channel
        assert len(amps) == 3
        assert len(offsets) == 3
