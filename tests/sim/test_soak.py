"""Chaos-soak tests: repro.sim.experiments.soak + real-PHY sessions.

The module-scoped ``acceptance`` fixture runs the full 2000-window
acceptance soak once -- dropout, jammer and oscillator-drift faults
over seeded traffic -- and the tests assert its invariants, health
trajectory and checkpoint/restore determinism against it.
"""

import numpy as np
import pytest

from repro.faults import BurstInterferer, FaultPlan, OscillatorDrift, TagDropout
from repro.receiver.session import SessionSupervisor
from repro.sim.experiments import soak as soak_mod
from repro.sim.experiments.soak import (
    SoakConfig,
    build_soak_stack,
    build_soak_stream,
    random_fault_plan,
    run_campaign,
    run_soak,
    shrink_fault_plan,
)

ACCEPTANCE_CFG = SoakConfig(n_windows=2000, seed=7)

#: Dropout burst, jammer burst, then sustained 3000 ppm drift -- the
#: drift regime where tags stay detectable but undecodable, forcing
#: the session through its RESYNC path.
ACCEPTANCE_PLAN = FaultPlan(
    [
        TagDropout(probability=0.5, start_round=300, end_round=420),
        BurstInterferer(duty=0.4, power_dbm=28.0, start_round=800, end_round=950),
        OscillatorDrift(
            probability=1.0, drift_ppm=3000.0, start_round=1300, end_round=1345
        ),
    ],
    seed=99,
)


@pytest.fixture(scope="module")
def acceptance():
    return run_soak(ACCEPTANCE_CFG, ACCEPTANCE_PLAN)


class TestAcceptanceSoak:
    def test_all_invariants_hold(self, acceptance):
        assert acceptance.violations == []
        assert acceptance.ok

    def test_ends_in_operational_state(self, acceptance):
        assert acceptance.final_state in ("healthy", "degraded")

    def test_drift_forces_resync_and_recovery(self, acceptance):
        assert acceptance.stats["resyncs"] >= 1
        states = [s for _, s in acceptance.health_history]
        assert "resync" in states
        # Recovery: after the last resync entry the session reached
        # healthy again.
        assert states[-1] == "healthy"

    def test_memory_stays_bounded(self, acceptance):
        cfg = acceptance.config
        assert acceptance.peak_dedup <= cfg.dedup_bound_factor * cfg.n_tags
        assert acceptance.peak_backlog <= 64

    def test_traffic_actually_flows(self, acceptance):
        # Seeded and deterministic; loose bounds guard against an
        # accidentally silent (or fault-free) stream.
        assert acceptance.offered >= 150
        assert acceptance.delivered >= 0.75 * acceptance.offered
        assert acceptance.stats["windows_skipped"] > acceptance.stats["windows_live"]

    def test_kill_restore_resume_is_identical(self, acceptance, tmp_path):
        """Kill mid-stream, checkpoint, restore onto a fresh stack and
        resume with a *different* chunk cadence: the emitted frame list
        and final state must match the uninterrupted run exactly."""
        cfg = ACCEPTANCE_CFG
        tags, stream = build_soak_stack(cfg)
        buffer, _ = build_soak_stream(cfg, ACCEPTANCE_PLAN, stream=stream, tags=tags)
        session = SessionSupervisor(stream)
        chunk = cfg.chunk_hops * stream.hop_samples
        cut = (buffer.size // (2 * chunk)) * chunk  # "kill" at ~50%
        frames = []
        for lo in range(0, cut, chunk):
            frames.extend(session.feed(buffer[lo : lo + chunk]))
        ckpt = session.checkpoint(tmp_path / "soak.jsonl")

        _, stream2 = build_soak_stack(cfg)
        resumed = SessionSupervisor.restore(ckpt, stream2)
        assert resumed.position == session.position
        chunk2 = 5 * stream2.hop_samples + 17
        for lo in range(resumed.position, buffer.size, chunk2):
            frames.extend(resumed.feed(buffer[lo : lo + chunk2]))
        frames.extend(resumed.finish())

        key = lambda fs: [(f.user_id, f.payload, f.start_sample) for f in fs]
        assert key(frames) == key(acceptance.frames)
        assert resumed.state.value == acceptance.final_state


class TestStreamSynthesis:
    def test_traffic_is_plan_independent(self):
        """Two different plans over one config stress identical
        underlying traffic (same windows, tags, payloads)."""
        cfg = SoakConfig(n_windows=40, seed=3)
        _, offered_a = build_soak_stream(cfg, None)
        _, offered_b = build_soak_stream(
            cfg, FaultPlan([TagDropout(probability=1.0)], seed=8)
        )
        assert [(t.window, t.tag, t.payload) for t in offered_a] == [
            (t.window, t.tag, t.payload) for t in offered_b
        ]
        assert all(t.fault == "fault.dropout" for t in offered_b)

    def test_buffer_is_deterministic(self):
        cfg = SoakConfig(n_windows=30, seed=5)
        plan = random_fault_plan(5, cfg.n_windows, cfg.n_tags)
        buf_a, _ = build_soak_stream(cfg, plan)
        buf_b, _ = build_soak_stream(cfg, plan)
        np.testing.assert_array_equal(buf_a, buf_b)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SoakConfig(n_windows=0)
        with pytest.raises(ValueError):
            SoakConfig(traffic_rate=1.5)
        with pytest.raises(ValueError):
            SoakConfig(chunk_hops=0)


class TestRandomPlans:
    def test_seeded_plans_are_reproducible(self):
        a = random_fault_plan(17, 500, 2)
        b = random_fault_plan(17, 500, 2)
        assert a.to_dict() == b.to_dict()
        assert 1 <= len(a.faults) <= 4

    def test_windows_are_well_formed(self):
        for seed in range(25):
            plan = random_fault_plan(seed, 200, 2)
            for f in plan.faults:
                assert 0 <= f.start_round < f.end_round <= 200


class TestShrink:
    def test_non_reproducing_plan_rejected(self):
        plan = FaultPlan([TagDropout()], seed=1)
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_fault_plan(plan, lambda p: False)

    def test_converges_to_minimal_plan_deterministically(self):
        plan = FaultPlan(
            [
                TagDropout(probability=0.5, start_round=0, end_round=200),
                BurstInterferer(duty=0.5, power_dbm=30.0, start_round=0, end_round=200),
                OscillatorDrift(
                    probability=0.5, drift_ppm=3000.0, start_round=100, end_round=300
                ),
            ],
            seed=4,
        )

        def reproduces(p):
            return any(
                isinstance(f, BurstInterferer) and f.active(50) for f in p.faults
            )

        a = shrink_fault_plan(plan, reproduces, horizon=300)
        b = shrink_fault_plan(plan, reproduces, horizon=300)
        assert a.to_dict() == b.to_dict()
        assert len(a.faults) == 1
        fault = a.faults[0]
        assert isinstance(fault, BurstInterferer)
        assert (fault.start_round, fault.end_round) == (50, 51)

    def test_shrinks_real_soak_failure_to_single_window(self):
        """End to end over the PHY: a frame-losing dropout plus an
        irrelevant (weak) jammer shrink to a one-window dropout that
        still reproduces the loss."""
        cfg = SoakConfig(n_windows=60, seed=11)
        clean = run_soak(cfg).stats["frames"]
        plan = FaultPlan(
            [
                TagDropout(probability=1.0, tags=(0,), start_round=0, end_round=60),
                BurstInterferer(
                    duty=0.3, power_dbm=-10.0, start_round=40, end_round=55
                ),
            ],
            seed=5,
        )

        def reproduces(p):
            return run_soak(cfg, p).stats["frames"] < clean

        assert reproduces(plan)
        shrunk = shrink_fault_plan(plan, reproduces, horizon=60)
        assert len(shrunk.faults) == 1
        fault = shrunk.faults[0]
        assert isinstance(fault, TagDropout)
        assert fault.end_round - fault.start_round == 1
        # The minimal plan replays the failure deterministically.
        assert reproduces(shrunk)


class TestCampaigns:
    def test_clean_campaigns_pass(self):
        cfg = SoakConfig(n_windows=120, seed=21)
        outcomes = run_campaign(cfg, n_campaigns=2)
        assert len(outcomes) == 2
        for k, outcome in enumerate(outcomes):
            assert outcome.campaign == k
            assert outcome.result.violations == []
            assert outcome.shrunken is None

    def test_injected_violation_is_shrunk(self, monkeypatch):
        """A deliberately-tripping invariant checker must surface as a
        violation and come back with a minimal reproducing plan."""
        cfg = SoakConfig(n_windows=60, seed=11)
        clean = run_soak(cfg).stats["frames"]
        real_check = soak_mod.check_invariants

        def strict_check(cfg_, stream, session, frames):
            out = real_check(cfg_, stream, session, frames)
            if session.stats["frames"] < clean:
                out.append(
                    soak_mod.InvariantViolation(
                        "frame_loss", f"decoded {session.stats['frames']} < {clean}"
                    )
                )
            return out

        monkeypatch.setattr(soak_mod, "check_invariants", strict_check)
        plan = FaultPlan(
            [TagDropout(probability=1.0, tags=(0,), start_round=0, end_round=60)],
            seed=5,
        )
        result = run_soak(cfg, plan)
        assert any(v.name == "frame_loss" for v in result.violations)
        shrunk = shrink_fault_plan(
            plan, lambda p: bool(run_soak(cfg, p).violations), horizon=60
        )
        assert shrunk.faults[0].end_round - shrunk.faults[0].start_round == 1
        assert run_soak(cfg, shrunk).violations
