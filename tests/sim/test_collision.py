"""Unit tests for repro.sim.collision."""

import numpy as np
import pytest

from repro.channel.interference import OfdmExcitationGate, WiFiInterference
from repro.channel.noise import NoiseModel
from repro.codes import twonc_codes
from repro.sim.collision import CollisionScenario, simulate_round
from repro.tag.oscillator import TagOscillator
from repro.tag.tag import Tag


def _scenario(n_tags=2, spc=2, **kw):
    codes = twonc_codes(n_tags, 32)
    tags = [Tag(i, codes[i], oscillator=TagOscillator(offset_chips=1.0 * i)) for i in range(n_tags)]
    amps = [1e-6] * n_tags
    defaults = dict(
        tags=tags, amplitudes=amps,
        noise=NoiseModel(extra_noise_db=0.0), samples_per_chip=spc,
    )
    defaults.update(kw)
    return CollisionScenario(**defaults)


class TestCollisionScenario:
    def test_amplitude_count_mismatch(self):
        codes = twonc_codes(2, 32)
        tags = [Tag(i, codes[i]) for i in range(2)]
        with pytest.raises(ValueError):
            CollisionScenario(tags=tags, amplitudes=[1.0])

    def test_invalid_spc(self):
        with pytest.raises(ValueError):
            _scenario(spc=0)

    def test_sample_rate(self):
        scn = _scenario(spc=4, chip_rate_hz=2e6)
        assert scn.sample_rate_hz == 8e6

    def test_effective_amplitude_scales_with_impedance(self):
        scn = _scenario()
        lo_state, hi_state = 0, len(scn.tags[0].codebook) - 1
        scn.tags[0].set_impedance(lo_state)
        weak = abs(scn.effective_amplitude(0))
        scn.tags[0].set_impedance(hi_state)
        strong = abs(scn.effective_amplitude(0))
        assert strong > weak


class TestSimulateRound:
    def test_truth_bookkeeping(self):
        scn = _scenario()
        payloads = {0: b"abc", 1: b"def"}
        iq, truth = simulate_round(scn, payloads, np.random.default_rng(0))
        assert truth.payloads == payloads
        assert set(truth.amplitudes) == {0, 1}
        assert truth.n_samples == iq.size

    def test_silent_tag_not_in_truth(self):
        scn = _scenario()
        iq, truth = simulate_round(scn, {0: b"abc"}, np.random.default_rng(0))
        assert 1 not in truth.amplitudes

    def test_lead_in_is_noise_only(self):
        scn = _scenario(lead_in_chips=64)
        iq, truth = simulate_round(scn, {0: b"abc", 1: b"def"}, np.random.default_rng(1))
        lead = 64 * scn.samples_per_chip
        lead_power = np.mean(np.abs(iq[: lead // 2]) ** 2)
        frame_power = np.mean(np.abs(iq[lead * 2 : lead * 4]) ** 2)
        assert frame_power > 10 * lead_power

    def test_offsets_respected(self):
        scn = _scenario()
        iq, truth = simulate_round(scn, {0: b"a", 1: b"b"}, np.random.default_rng(2))
        lead = scn.lead_in_chips * scn.samples_per_chip
        assert truth.offsets_samples[0] == lead
        assert truth.offsets_samples[1] == lead + 1.0 * scn.samples_per_chip

    def test_all_silent_gives_noise_buffer(self):
        scn = _scenario()
        iq, truth = simulate_round(scn, {}, np.random.default_rng(3))
        assert iq.size > 0
        assert truth.amplitudes == {}

    def test_excitation_gate_zeroes_signal(self):
        gate = OfdmExcitationGate(mean_on_s=1e-9, mean_off_s=10.0)  # ~always off
        scn = _scenario(excitation_gate=gate, noise=NoiseModel(extra_noise_db=-100))
        iq, truth = simulate_round(scn, {0: b"abc", 1: b"def"}, np.random.default_rng(4))
        assert np.max(np.abs(iq)) < 1e-7

    def test_interference_adds_power(self):
        quiet = _scenario(noise=NoiseModel(extra_noise_db=-100.0))
        iq_quiet, _ = simulate_round(quiet, {}, np.random.default_rng(5))
        loud = _scenario(
            noise=NoiseModel(extra_noise_db=-100.0),
            interference=WiFiInterference(power_dbm=-40, overlap=1.0, mean_idle_s=1e-4),
        )
        iq_loud, _ = simulate_round(loud, {}, np.random.default_rng(5))
        assert np.mean(np.abs(iq_loud) ** 2) > 10 * np.mean(np.abs(iq_quiet) ** 2)

    def test_reproducible_with_seed(self):
        a, _ = simulate_round(_scenario(), {0: b"x", 1: b"y"}, np.random.default_rng(7))
        b, _ = simulate_round(_scenario(), {0: b"x", 1: b"y"}, np.random.default_rng(7))
        assert np.array_equal(a, b)
