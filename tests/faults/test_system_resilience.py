"""System-level resilience: epochs, unslotted regime, experiment driver."""

import numpy as np

from repro.channel.geometry import Deployment
from repro.codes import twonc_codes
from repro.faults import AdcSaturation, BurstInterferer, FaultPlan, TagBrownout, TagDropout
from repro.obs import RunProfile, Tracer
from repro.receiver import CbmaReceiver
from repro.receiver.streaming import StreamingReceiver
from repro.sim.experiments import resilience_curve, run_faulted_network
from repro.sim.network import CbmaConfig
from repro.sim.unslotted import UnslottedScenario, simulate_unslotted
from repro.system import CbmaSystem
from repro.tag import FrameFormat, Tag


class TestSystemFaults:
    def _system(self, plan, seed=11):
        return CbmaSystem(
            CbmaConfig(n_tags=3, seed=seed),
            Deployment.linear(6, tag_to_rx=1.0),
            seed=seed,
            faults=plan,
        )

    def test_acceptance_epoch_under_composite_faults(self):
        """The robustness acceptance criterion: 20% dropout + burst
        interference over a full CbmaSystem epoch completes without an
        uncaught exception, still delivers frames from surviving tags,
        and attributes every injected fault."""
        plan = FaultPlan(
            [
                TagDropout(probability=0.2),
                BurstInterferer(start_round=5, end_round=40, power_dbm=-62.0),
            ],
            seed=3,
        )
        system = self._system(plan)
        reports = system.run(2, rounds_per_epoch=10)
        assert len(reports) == 2
        assert all(r.fer < 1.0 for r in reports)  # surviving tags deliver
        assert system.fault_log.get("fault.dropout", 0) > 0
        assert system.fault_log.get("fault.interference", 0) > 0

    def test_fault_timeline_spans_epochs(self):
        # Power control probes also consume rounds, so after one epoch
        # the global timeline is far past rounds_per_epoch.
        plan = FaultPlan([TagDropout(probability=0.1)], seed=1)
        system = self._system(plan)
        system.run_epoch(rounds=8)
        after_first = system._rounds_simulated
        assert after_first > 8
        system.run_epoch(rounds=8)
        assert system._rounds_simulated > after_first

    def test_system_reproducible(self):
        def run():
            plan = FaultPlan([TagDropout(probability=0.25)], seed=5)
            system = self._system(plan)
            reports = system.run(2, rounds_per_epoch=8)
            return ([r.fer for r in reports], dict(system.fault_log))

        assert run() == run()


class TestUnslottedFaults:
    def _setup(self, payload_bytes=4):
        codes = twonc_codes(3, 32)
        fmt = FrameFormat()
        tags = [Tag(i, codes[i], fmt=fmt) for i in range(3)]

        def make_receiver():
            rx = CbmaReceiver(
                {i: codes[i] for i in range(3)}, fmt=fmt, samples_per_chip=2
            )
            return StreamingReceiver(rx, max_frame_bits=fmt.frame_bits(payload_bytes))

        scenario = UnslottedScenario(
            tags=tags,
            amplitudes=[2e-6] * 3,
            rate_hz=40.0,
            duration_s=0.02,
            payload_bytes=payload_bytes,
        )
        return scenario, make_receiver

    def test_dropout_reduces_delivery_and_is_counted(self):
        scenario, make_receiver = self._setup()
        clean = simulate_unslotted(scenario, make_receiver(), rng=1)
        plan = FaultPlan([TagDropout(probability=1.0)], seed=2)
        faulty = simulate_unslotted(scenario, make_receiver(), rng=1, faults=plan)
        assert clean.offered == faulty.offered  # offered load unchanged
        assert faulty.delivered == 0
        assert faulty.faults_injected["fault.dropout"] == faulty.offered

    def test_unslotted_faults_reproducible(self):
        scenario, make_receiver = self._setup()

        def run():
            plan = FaultPlan(
                [TagDropout(probability=0.4), AdcSaturation(full_scale=5e-6)], seed=2
            )
            r = simulate_unslotted(scenario, make_receiver(), rng=1, faults=plan)
            return (r.delivered, dict(r.faults_injected))

        assert run() == run()

    def test_empty_plan_matches_clean_run(self):
        scenario, make_receiver = self._setup()
        clean = simulate_unslotted(scenario, make_receiver(), rng=1)
        empty = simulate_unslotted(scenario, make_receiver(), rng=1, faults=FaultPlan())
        assert clean.delivered == empty.delivered
        assert empty.faults_injected == {}


class TestResilienceDriver:
    def test_curve_shape_and_budget(self):
        result = resilience_curve(
            fault_rates=(0.0, 0.5), n_tags=2, rounds=6, seed=7, burst_power_dbm=None
        )
        assert result.experiment_id == "resilience"
        assert result.x == [0.0, 0.5]
        delivery = result.series["delivery ratio"]
        loss = result.series["fault-attributed loss"]
        assert len(delivery) == len(loss) == 2
        # Healthy point delivers everything on the bench geometry.
        assert delivery[0] == 1.0 and loss[0] == 0.0
        # Faulted point: losses are attributed, not silently dropped.
        assert delivery[1] < 1.0
        assert loss[1] > 0.0

    def test_single_point_profile_budget_has_fault_slugs(self):
        plan = FaultPlan([TagDropout(probability=1.0)], seed=0)
        metrics, profile, fault_log = run_faulted_network(
            plan, n_tags=2, rounds=4, seed=7
        )
        assert isinstance(profile, RunProfile)
        assert metrics.frames_correct == 0
        assert profile.error_budget["fault.dropout"] == 1.0
        assert fault_log["fault.dropout"] == 8

    def test_error_budget_accepts_brownout_attribution(self):
        plan = FaultPlan([TagBrownout(probability=1.0, keep_min=0.05, keep_max=0.2)], seed=1)
        metrics, profile, _log = run_faulted_network(plan, n_tags=2, rounds=4, seed=7)
        lost = metrics.frames_sent - metrics.frames_correct
        if lost:  # brownout at <=20% kept burst should lose frames
            assert profile.error_budget.get("fault.brownout", 0.0) > 0.0
