"""Unit tests for repro.faults: models, plan resolution, determinism."""

import json

import numpy as np
import pytest

from repro.faults import (
    FAULT_REASONS,
    AckLoss,
    AdcSaturation,
    BurstInterferer,
    FaultPlan,
    OscillatorDrift,
    RoundFaults,
    StuckImpedance,
    TagBrownout,
    TagDropout,
    TagTxFault,
)


class TestModelValidation:
    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            TagDropout(probability=1.5)
        with pytest.raises(ValueError):
            AckLoss(probability=-0.1)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            TagDropout(start_round=-1)
        with pytest.raises(ValueError):
            TagDropout(start_round=5, end_round=5)

    def test_window_activity(self):
        f = TagDropout(start_round=3, end_round=7)
        assert not f.active(2)
        assert f.active(3)
        assert f.active(6)
        assert not f.active(7)

    def test_open_ended_window(self):
        f = TagDropout(start_round=2)
        assert f.active(10**6)
        assert not f.active(1)

    def test_targets_default_all_tags(self):
        assert TagDropout().targets(3) == (0, 1, 2)

    def test_targets_explicit_clipped_to_population(self):
        assert StuckImpedance(tags=(0, 5)).targets(3) == (0,)

    def test_fault_reasons_catalog(self):
        assert "fault.dropout" in FAULT_REASONS
        assert len(set(FAULT_REASONS)) == len(FAULT_REASONS)

    def test_burst_power_conversion(self):
        assert BurstInterferer(power_dbm=-30.0).power_w == pytest.approx(1e-6)


class TestPlanValidation:
    def test_rejects_non_fault(self):
        with pytest.raises(TypeError):
            FaultPlan(["not a fault"])

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert len(plan) == 0
        assert plan.describe() == "(no faults)"

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([TagDropout()]).resolve(-1, 2)

    def test_describe_mentions_each_fault(self):
        plan = FaultPlan([TagDropout(), BurstInterferer(start_round=2, end_round=4)])
        text = plan.describe()
        assert "TagDropout" in text and "BurstInterferer" in text
        assert "[2, 4)" in text


class TestDeterminism:
    def _plan(self, seed=11):
        return FaultPlan(
            [
                TagDropout(probability=0.4),
                TagBrownout(probability=0.5, tags=(1,)),
                OscillatorDrift(probability=0.3, drift_ppm=5000.0),
                BurstInterferer(duty=0.6, power_dbm=-55.0),
                AckLoss(probability=0.3),
                AdcSaturation(full_scale=1e-6, start_round=4),
                StuckImpedance(tags=(0,)),
            ],
            seed=seed,
        )

    def test_same_seed_bit_identical(self):
        a, b = self._plan(), self._plan()
        for r in range(20):
            ra, rb = a.resolve(r, 3), b.resolve(r, 3)
            assert ra.silent == rb.silent
            assert ra.brownout == rb.brownout
            assert ra.drift_ppm == rb.drift_ppm
            assert ra.ack_lost == rb.ack_lost
            assert ra.jammers == rb.jammers
            assert ra.clip_level == rb.clip_level

    def test_resolution_is_order_independent(self):
        a, b = self._plan(), self._plan()
        for r in range(10):
            a.resolve(r, 3)
        # b jumps straight to round 7 without resolving 0..6 first.
        r7a, r7b = a.resolve(7, 3), b.resolve(7, 3)
        assert r7a.silent == r7b.silent
        assert r7a.jammers == r7b.jammers

    def test_different_seed_differs(self):
        rounds = range(30)
        a = [self._plan(1).resolve(r, 3).silent for r in rounds]
        b = [self._plan(2).resolve(r, 3).silent for r in rounds]
        assert a != b

    def test_jammer_waveform_reproducible(self):
        plan = FaultPlan([BurstInterferer(duty=1.0, power_dbm=-55.0)], seed=11)
        rf = plan.resolve(0, 3)
        assert rf.jammers
        w1 = rf.jammer_samples(128, 2e6)
        w2 = rf.jammer_samples(128, 2e6)
        np.testing.assert_array_equal(w1, w2)

    def test_jammer_never_touches_global_rng(self):
        plan = FaultPlan([BurstInterferer(duty=1.0)], seed=11)
        rf = plan.resolve(0, 3)
        state_before = np.random.get_state()[1].copy()
        rf.jammer_samples(64, 2e6)
        np.testing.assert_array_equal(np.random.get_state()[1], state_before)


class TestSerialization:
    def _plan(self):
        return FaultPlan(
            [
                TagDropout(probability=0.4, tags=(0, 2), start_round=3, end_round=9),
                BurstInterferer(duty=0.6, power_dbm=-55.0),
                OscillatorDrift(probability=0.3, drift_ppm=5000.0, start_round=1),
                AdcSaturation(full_scale=1e-6, start_round=4),
            ],
            seed=13,
        )

    def test_round_trip_is_json_safe_and_stable(self):
        plan = self._plan()
        wire = json.loads(json.dumps(plan.to_dict()))
        back = FaultPlan.from_dict(wire)
        assert back.to_dict() == plan.to_dict()
        assert back.seed == plan.seed
        assert [type(f).__name__ for f in back.faults] == [
            type(f).__name__ for f in plan.faults
        ]
        assert back.faults[0].tags == (0, 2)  # lists re-normalised to tuples

    def test_round_trip_resolves_bit_identically(self):
        plan = self._plan()
        back = FaultPlan.from_dict(plan.to_dict())
        for r in range(20):
            ra, rb = plan.resolve(r, 4), back.resolve(r, 4)
            assert ra.silent == rb.silent
            assert ra.brownout == rb.brownout
            assert ra.drift_ppm == rb.drift_ppm
            assert ra.jammers == rb.jammers
            assert ra.clip_level == rb.clip_level

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"seed": 0, "faults": [{"kind": "EvilFault", "params": {}}]}
            )

    def test_empty_plan_round_trip(self):
        back = FaultPlan.from_dict(FaultPlan().to_dict())
        assert back.empty


class TestRoundFaults:
    def test_clean_round_is_inactive(self):
        plan = FaultPlan([TagDropout(start_round=100)], seed=0)
        rf = plan.resolve(0, 2)
        assert not rf.any_active
        assert rf.tx_faults() == {}
        assert rf.loss_reason(0) is None

    def test_dropout_wins_over_brownout(self):
        rf = RoundFaults(round_index=0, silent=frozenset({0}), brownout={0: 0.5, 1: 0.4})
        tx = rf.tx_faults()
        assert tx[0] == TagTxFault(silent=True)
        assert tx[1] == TagTxFault(keep_fraction=0.4)

    def test_loss_reason_priority(self):
        rf = RoundFaults(
            round_index=0,
            silent=frozenset({0}),
            brownout={1: 0.5},
            drift_ppm={2: 1000.0},
            jammers=((1e-9, 7),),
            clip_level=1e-6,
        )
        assert rf.loss_reason(0) == "fault.dropout"
        assert rf.loss_reason(1) == "fault.brownout"
        assert rf.loss_reason(2) == "fault.clock_drift"
        # Untouched tag: shared-medium faults are the best explanation,
        # ADC clipping before interference.
        assert rf.loss_reason(3) == "fault.adc_clip"

    def test_clip_limits_both_rails(self):
        rf = RoundFaults(round_index=0, clip_level=1.0)
        out = rf.clip(np.array([3.0 - 4.0j, 0.5 + 0.25j]))
        assert out[0] == 1.0 - 1.0j
        assert out[1] == 0.5 + 0.25j

    def test_clip_noop_without_level(self):
        rf = RoundFaults(round_index=0)
        x = np.array([5.0 + 5.0j])
        assert rf.clip(x) is x

    def test_adc_saturation_takes_tightest_level(self):
        plan = FaultPlan(
            [AdcSaturation(full_scale=2e-6), AdcSaturation(full_scale=5e-7)], seed=0
        )
        assert plan.resolve(0, 1).clip_level == 5e-7

    def test_deterministic_drift_accumulates(self):
        plan = FaultPlan(
            [
                OscillatorDrift(probability=1.0, drift_ppm=100.0),
                OscillatorDrift(probability=1.0, drift_ppm=50.0),
            ],
            seed=0,
        )
        rf = plan.resolve(0, 1)
        assert rf.drift_ppm[0] == pytest.approx(150.0)
