"""Integration tests: FaultPlan threaded through the network round loop."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.faults import (
    AckLoss,
    AdcSaturation,
    BurstInterferer,
    FaultPlan,
    OscillatorDrift,
    StuckImpedance,
    TagBrownout,
    TagDropout,
)
from repro.mac.arq import ArqSimulator
from repro.obs import Tracer
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.sim.traffic import PoissonArrivals

N_TAGS = 3
ROUNDS = 10


def _network(plan, seed=7, tracer=None, **kwargs):
    return CbmaNetwork(
        CbmaConfig(n_tags=N_TAGS, seed=seed),
        Deployment.linear(N_TAGS, tag_to_rx=1.0),
        tracer=tracer,
        faults=plan,
        **kwargs,
    )


def _stress_plan(seed=5):
    return FaultPlan(
        [
            TagDropout(probability=0.3),
            TagBrownout(tags=(1,), probability=0.5),
            BurstInterferer(start_round=3, end_round=6, power_dbm=-60.0),
            AckLoss(probability=0.2),
            StuckImpedance(tags=(0,)),
        ],
        seed=seed,
    )


class TestNetworkFaultInjection:
    def test_faulted_run_completes_and_attributes_losses(self):
        tracer = Tracer()
        net = _network(_stress_plan(), tracer=tracer)
        metrics = net.run_rounds(ROUNDS)
        assert metrics.frames_sent == N_TAGS * ROUNDS
        # Every lost frame is attributed to *some* errors.* counter.
        lost = metrics.frames_sent - metrics.frames_correct
        attributed = sum(
            v for k, v in tracer.counters.items() if k.startswith("errors.")
        )
        assert attributed == lost
        # And the fault log saw injections.
        assert net.fault_log.get("fault.dropout", 0) > 0
        assert net.fault_log.get("fault.interference", 0) == 3

    def test_bit_reproducible_under_fixed_seed(self):
        runs = []
        for _ in range(2):
            tracer = Tracer()
            net = _network(_stress_plan(), tracer=tracer)
            metrics = net.run_rounds(ROUNDS)
            runs.append((metrics.fer, dict(net.fault_log), dict(tracer.counters)))
        assert runs[0] == runs[1]

    def test_fault_seed_changes_outcome(self):
        logs = []
        for fault_seed in (1, 2):
            net = _network(_stress_plan(seed=fault_seed))
            net.run_rounds(ROUNDS)
            logs.append(dict(net.fault_log))
        assert logs[0] != logs[1]

    def test_no_plan_matches_healthy_baseline(self):
        base = _network(None).run_rounds(ROUNDS)
        empty = _network(FaultPlan()).run_rounds(ROUNDS)
        assert empty.fer == base.fer
        assert empty.frames_correct == base.frames_correct

    def test_round_offset_shifts_fault_windows(self):
        plan = FaultPlan([TagDropout(start_round=0, end_round=5)], seed=3)
        late = _network(plan, round_offset=5)
        late.run_rounds(ROUNDS)
        assert late.fault_log.get("fault.dropout", 0) == 0

    def test_full_dropout_loses_everything_with_attribution(self):
        tracer = Tracer()
        net = _network(FaultPlan([TagDropout(probability=1.0)], seed=0), tracer=tracer)
        metrics = net.run_rounds(4)
        assert metrics.frames_correct == 0
        assert tracer.counters["errors.fault.dropout"] == metrics.frames_sent

    def test_stuck_impedance_pins_tag_state(self):
        net = _network(FaultPlan([StuckImpedance(tags=(0,))], seed=0))
        net.run_rounds(1)  # applies the stuck flag
        z_before = net.tags[0].impedance_index
        net.tags[0].step_impedance()
        net.tags[0].set_impedance(0)
        assert net.tags[0].impedance_index == z_before
        assert net.tags[0].ignored_commands == 2

    def test_heavy_drift_degrades_but_never_raises(self):
        plan = FaultPlan([OscillatorDrift(probability=1.0, drift_ppm=20_000.0)], seed=0)
        tracer = Tracer()
        net = _network(plan, tracer=tracer)
        metrics = net.run_rounds(4)
        assert net.fault_log["fault.clock_drift"] == 4 * N_TAGS
        assert metrics.frames_sent == 4 * N_TAGS

    def test_hard_clipping_floors_delivery(self):
        # Clip far below the signal scale: the buffer is destroyed, the
        # run must still complete with every loss attributed.
        plan = FaultPlan([AdcSaturation(full_scale=1e-9)], seed=0)
        tracer = Tracer()
        net = _network(plan, tracer=tracer)
        metrics = net.run_rounds(3)
        assert metrics.frames_correct == 0
        assert tracer.counters["errors.fault.adc_clip"] == metrics.frames_sent


class TestArqFaults:
    def _arq(self, plan, **kwargs):
        net = _network(plan, seed=4)
        return net, ArqSimulator(net, PoissonArrivals(rate_hz=12.0), **kwargs)

    def test_ack_loss_creates_duplicates_not_double_delivery(self):
        plan = FaultPlan([AckLoss(probability=0.5)], seed=9)
        net, arq = self._arq(plan, max_retries=6)
        stats = arq.run(40, rng=2)
        assert stats.acks_lost > 0
        assert stats.duplicates > 0
        assert stats.delivered <= stats.offered

    def test_arq_backoff_defers_retransmissions(self):
        # An always-silent tag 0: its messages only ever fail, so its
        # transmission count reflects the backoff schedule, not
        # one-per-round hammering.
        plan = FaultPlan([TagDropout(probability=1.0, tags=(0,))], seed=0)
        net, arq = self._arq(plan, max_retries=4, backoff_base_rounds=2, backoff_cap_rounds=8)
        stats = arq.run(30, rng=3)
        assert net.fault_log["fault.dropout"] > 0
        # With backoff 2/4/8 the 4 attempts of one message span >= 14
        # rounds; without backoff they would span 4.
        assert stats.transmissions < 30

    def test_ack_loss_prob_param_without_fault_plan(self):
        net, arq = self._arq(None, max_retries=6, ack_loss_prob=0.5)
        stats = arq.run(40, rng=2)
        assert stats.acks_lost > 0
        assert stats.duplicates > 0

    def test_invalid_backoff_rejected(self):
        net = _network(None)
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(rate_hz=1.0), backoff_base_rounds=-1)
        with pytest.raises(ValueError):
            ArqSimulator(
                net, PoissonArrivals(rate_hz=1.0), backoff_base_rounds=4, backoff_cap_rounds=2
            )
        with pytest.raises(ValueError):
            ArqSimulator(net, PoissonArrivals(rate_hz=1.0), ack_loss_prob=1.5)

    def test_faulted_arq_reproducible(self):
        def run():
            plan = FaultPlan([AckLoss(probability=0.3), TagDropout(probability=0.2)], seed=6)
            net, arq = self._arq(plan, max_retries=5)
            s = arq.run(30, rng=8)
            return (s.offered, s.delivered, s.duplicates, s.acks_lost, s.dropped)

        assert run() == run()
