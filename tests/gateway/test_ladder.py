"""State-machine tests for the degradation ladder."""

import pytest

from repro.gateway import DegradationLadder, GatewayState


def make_ladder(patience=2):
    return DegradationLadder(
        queue_high=10, queue_low=2, rtf_high=1.0, rtf_low=0.5, patience=patience
    )


HOT = dict(queue_depth=10, rtf=0.0)
COOL = dict(queue_depth=0, rtf=0.0)
MIXED = dict(queue_depth=5, rtf=0.7)


class TestObserve:
    def test_starts_full(self):
        assert make_ladder().state is GatewayState.FULL

    def test_patience_hot_steps_one_rung(self):
        ladder = make_ladder(patience=3)
        ladder.observe(**HOT)
        ladder.observe(**HOT)
        assert ladder.state is GatewayState.FULL
        ladder.observe(**HOT)
        assert ladder.state is GatewayState.THROTTLED

    def test_either_signal_is_hot(self):
        ladder = make_ladder(patience=1)
        ladder.observe(queue_depth=0, rtf=1.5)
        assert ladder.state is GatewayState.THROTTLED

    def test_mixed_resets_counters(self):
        ladder = make_ladder(patience=2)
        ladder.observe(**HOT)
        ladder.observe(**MIXED)
        ladder.observe(**HOT)
        assert ladder.state is GatewayState.FULL
        ladder.observe(**HOT)
        assert ladder.state is GatewayState.THROTTLED

    def test_cool_needs_both_signals_low(self):
        ladder = make_ladder(patience=1)
        ladder.observe(**HOT)
        assert ladder.state is GatewayState.THROTTLED
        ladder.observe(queue_depth=0, rtf=0.7)  # rtf still above low
        assert ladder.state is GatewayState.THROTTLED
        ladder.observe(**COOL)
        assert ladder.state is GatewayState.FULL

    def test_observe_never_reaches_draining(self):
        ladder = make_ladder(patience=1)
        for _ in range(10):
            ladder.observe(**HOT)
        assert ladder.state is GatewayState.SHED

    def test_full_recovery_path(self):
        ladder = make_ladder(patience=1)
        ladder.observe(**HOT)
        ladder.observe(**HOT)
        assert ladder.state is GatewayState.SHED
        ladder.observe(**COOL)
        ladder.observe(**COOL)
        assert ladder.state is GatewayState.FULL
        path = [(f.value, t.value) for f, t, _forced in ladder.transitions]
        assert path == [
            ("full", "throttled"),
            ("throttled", "shed"),
            ("shed", "throttled"),
            ("throttled", "full"),
        ]

    def test_observed_transitions_are_adjacent(self):
        ladder = make_ladder(patience=1)
        order = ["full", "throttled", "shed", "draining"]
        for _ in range(5):
            ladder.observe(**HOT)
        for _ in range(5):
            ladder.observe(**COOL)
        for frm, to, forced in ladder.transitions:
            assert not forced
            assert abs(order.index(to.value) - order.index(frm.value)) == 1


class TestForce:
    def test_force_jumps_and_is_flagged(self):
        ladder = make_ladder()
        ladder.force(GatewayState.DRAINING)
        assert ladder.state is GatewayState.DRAINING
        assert ladder.transitions == [
            (GatewayState.FULL, GatewayState.DRAINING, True)
        ]

    def test_forced_ladder_ignores_observations(self):
        ladder = make_ladder(patience=1)
        ladder.force(GatewayState.DRAINING)
        for _ in range(5):
            ladder.observe(**COOL)
        assert ladder.state is GatewayState.DRAINING

    def test_release_restores_and_reenables(self):
        ladder = make_ladder(patience=1)
        ladder.force(GatewayState.DRAINING)
        ladder.release(GatewayState.THROTTLED)
        assert ladder.state is GatewayState.THROTTLED
        ladder.observe(**COOL)
        assert ladder.state is GatewayState.FULL

    def test_rung_property(self):
        ladder = make_ladder()
        assert ladder.rung == 0
        ladder.force(GatewayState.SHED)
        assert ladder.rung == 2


class TestValidation:
    def test_bad_watermarks(self):
        with pytest.raises(ValueError):
            DegradationLadder(queue_high=2, queue_low=2, rtf_high=1.0, rtf_low=0.5)
        with pytest.raises(ValueError):
            DegradationLadder(queue_high=10, queue_low=2, rtf_high=0.5, rtf_low=0.5)
        with pytest.raises(ValueError):
            DegradationLadder(
                queue_high=10, queue_low=2, rtf_high=1.0, rtf_low=0.5, patience=0
            )
