"""Gateway chaos soak: fault plans, invariants, and the acceptance run.

The acceptance soak is the ISSUE's bar: 50 concurrent streams under a
traffic spike overlapping a capacity brownout, harsh enough to climb
the ladder to SHED with counted sheds, completing with every machine
-checked invariant holding -- and a mid-soak worker drain/migrate/
resume that is bit-identical to the unmigrated run.
"""

import dataclasses

import pytest

from repro.gateway.soak import (
    CapacityBrownout,
    GatewayFaultPlan,
    GatewaySoakConfig,
    GatewaySoakResult,
    TrafficSpike,
    check_gateway_invariants,
    random_gateway_fault_plan,
    run_gateway_soak,
)
from repro.gateway.gateway import StreamReport
from repro.sim.experiments.soak import SoakConfig, shrink_fault_plan


def harsh_plan(seed=7):
    """Spike x4 overlapping a 95% brownout: enough pressure to SHED."""
    return GatewayFaultPlan(
        [
            TrafficSpike(factor=4.0, start_round=2, end_round=8),
            CapacityBrownout(factor=0.05, start_round=3, end_round=9),
        ],
        seed=seed,
    )


def acceptance_config(**overrides):
    base = dict(
        n_streams=50,
        n_rounds=12,
        seed=7,
        backend="inline",
        capture=SoakConfig(n_windows=30, n_tags=2, seed=7, traffic_rate=0.3),
    )
    base.update(overrides)
    return GatewaySoakConfig(**base)


@pytest.fixture(scope="module")
def acceptance_pair():
    """The 50-stream acceptance soak, with and without a live migrate."""
    cfg = acceptance_config()
    plain = run_gateway_soak(cfg, harsh_plan())
    migrated = run_gateway_soak(
        dataclasses.replace(cfg, migrate_round=5), harsh_plan()
    )
    return plain, migrated


class TestFaultPlan:
    def test_resolve_spikes_multiply_brownouts_min(self):
        plan = GatewayFaultPlan(
            [
                TrafficSpike(factor=2.0, start_round=0, end_round=4),
                TrafficSpike(factor=3.0, start_round=2, end_round=4),
                CapacityBrownout(factor=0.5, start_round=0, end_round=4),
                CapacityBrownout(factor=0.2, start_round=2, end_round=4),
            ]
        )
        early, late, after = plan.resolve(1), plan.resolve(3), plan.resolve(4)
        assert (early.spike, early.budget) == (2.0, 0.5)
        assert (late.spike, late.budget) == (6.0, 0.2)
        assert (after.spike, after.budget) == (1.0, 1.0)

    def test_roundtrip_through_dict(self):
        plan = harsh_plan(seed=13)
        clone = GatewayFaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 13
        assert clone.faults == plan.faults

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown gateway fault kind"):
            GatewayFaultPlan.from_dict(
                {"faults": [{"kind": "meteor_strike"}], "seed": 0}
            )
        with pytest.raises(TypeError):
            GatewayFaultPlan([object()])

    def test_model_validation(self):
        with pytest.raises(ValueError):
            TrafficSpike(factor=0.5)
        with pytest.raises(ValueError):
            CapacityBrownout(factor=1.5)
        with pytest.raises(ValueError):
            TrafficSpike(start_round=-1)

    def test_random_plan_is_seed_deterministic(self):
        a = random_gateway_fault_plan(5, 12)
        b = random_gateway_fault_plan(5, 12)
        assert a.faults == b.faults
        assert not a.empty
        assert a.faults != random_gateway_fault_plan(6, 12).faults

    def test_shrinks_through_the_shared_ddmin(self):
        """The generalized shrinker reduces a gateway plan to the one
        fault the (synthetic, deterministic) predicate needs."""
        plan = GatewayFaultPlan(
            [
                TrafficSpike(factor=5.0, start_round=0, end_round=10),
                TrafficSpike(factor=2.0, start_round=1, end_round=6),
                CapacityBrownout(factor=0.3, start_round=2, end_round=7),
            ],
            seed=3,
        )

        def reproduces(p):
            return p.resolve(5).spike >= 5.0

        minimal = shrink_fault_plan(plan, reproduces, horizon=12)
        assert type(minimal) is GatewayFaultPlan
        assert minimal.seed == 3
        assert len(minimal.faults) == 1
        (fault,) = minimal.faults
        assert isinstance(fault, TrafficSpike)
        assert fault.active(5)


class TestInvariantChecker:
    def test_flags_silent_drop_and_rung_skips(self):
        cfg = acceptance_config(
            n_streams=8, capture=SoakConfig(n_windows=8, n_tags=2, seed=7)
        )
        result = GatewaySoakResult(
            config=cfg,
            plan=None,
            reports={
                0: StreamReport(
                    stream_id=0, frames=[], stats={},
                    admitted=1, fed=0, shed=0, rejected=0,
                )
            },
            offered={0: 2},
            round_states=[],
            transitions=[
                ("full", "shed", False),
                ("throttled", "draining", False),
                ("full", "draining", True),
            ],
            admitted=1,
            rejected=0,
            shed=0,
            deadline_misses=0,
            migrations=0,
            moved_sessions=[],
            peak_queue_depth=0,
            peak_retained_samples=0,
        )
        names = [v.name for v in check_gateway_invariants(cfg, result)]
        assert names.count("silent_drop") == 1
        assert names.count("admission_accounting") == 1
        # Rung-skip, plus unforced draining (twice: skip + entry);
        # the forced jump on the last transition is exempt.
        assert names.count("ladder_step") == 3


class TestAcceptanceSoak:
    def test_all_invariants_hold(self, acceptance_pair):
        plain, _ = acceptance_pair
        assert plain.ok, [f"{v.name}: {v.detail}" for v in plain.violations]

    def test_ladder_reaches_shed_with_counted_sheds(self, acceptance_pair):
        plain, _ = acceptance_pair
        assert "shed" in plain.round_states
        assert plain.shed > 0
        assert plain.round_states[-1] == "full"  # recovered after faults

    def test_offered_work_fully_accounted(self, acceptance_pair):
        plain, _ = acceptance_pair
        assert sum(plain.offered.values()) == plain.admitted + plain.rejected
        for sid, rep in plain.reports.items():
            assert rep.admitted == rep.fed + rep.shed

    def test_delivers_frames_under_fault_load(self, acceptance_pair):
        plain, _ = acceptance_pair
        assert plain.delivered_frames > 0
        assert len(plain.reports) == 50

    def test_migration_is_bit_identical(self, acceptance_pair):
        plain, migrated = acceptance_pair
        assert migrated.ok, [
            f"{v.name}: {v.detail}" for v in migrated.violations
        ]
        assert migrated.moved_sessions
        assert migrated.migrations == len(migrated.moved_sessions)
        assert plain.reports.keys() == migrated.reports.keys()
        for sid in plain.reports:
            a, b = plain.reports[sid], migrated.reports[sid]
            assert [
                (f.user_id, f.payload, f.start_sample) for f in a.frames
            ] == [(f.user_id, f.payload, f.start_sample) for f in b.frames]
            assert (a.admitted, a.fed, a.shed, a.rejected) == (
                b.admitted, b.fed, b.shed, b.rejected,
            )

    def test_migration_forces_draining_only_transitions(self, acceptance_pair):
        _, migrated = acceptance_pair
        draining = [t for t in migrated.transitions if t[1] == "draining"]
        assert draining
        assert all(forced for _frm, _to, forced in draining)


class TestBackendParity:
    def test_process_backend_matches_inline(self):
        """A small soak decodes identically through the real pool."""
        kwargs = dict(
            n_streams=4,
            n_rounds=4,
            seed=7,
            n_workers=2,
            capture=SoakConfig(n_windows=12, n_tags=2, seed=7, traffic_rate=0.3),
        )
        plan = GatewayFaultPlan(
            [TrafficSpike(factor=2.0, start_round=1, end_round=3)], seed=7
        )
        inline = run_gateway_soak(
            GatewaySoakConfig(backend="inline", **kwargs), plan
        )
        process = run_gateway_soak(
            GatewaySoakConfig(backend="process", **kwargs), plan
        )
        assert inline.ok and process.ok
        assert inline.reports.keys() == process.reports.keys()
        for sid in inline.reports:
            a, b = inline.reports[sid], process.reports[sid]
            assert [
                (f.user_id, f.payload, f.start_sample) for f in a.frames
            ] == [(f.user_id, f.payload, f.start_sample) for f in b.frames]
            assert (a.admitted, a.fed, a.shed) == (b.admitted, b.fed, b.shed)
