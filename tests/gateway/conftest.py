"""Shared fixtures for the gateway suite.

Everything runs on a virtual clock: admission, throttling, retries
and the real-time factor all derive from the injected ``clock`` /
``sleep`` pair, so each test is a pure function of the traffic it
submits.
"""

import asyncio

import pytest

from repro.sim.network import CbmaConfig


class VirtualClock:
    """A manually-advanced clock with a matching async sleep."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    async def sleep(self, dt: float) -> None:
        self.now += dt

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def vclock():
    return VirtualClock()


@pytest.fixture(scope="session")
def phy_config():
    """A small PHY config; admission tests never decode real frames."""
    return CbmaConfig(
        n_tags=2,
        seed=7,
        payload_bytes=4,
        code_length=32,
        samples_per_chip=1,
        user_threshold=0.25,
    )


def drive(coro):
    """Run one async test body to completion."""
    return asyncio.run(coro)
