"""Behavioural tests for the Gateway: admission, shedding, accounting.

These tests drive the service layer with silent chunks (no encoded
frames) on the inline backend: what is under test is the admission
ledger -- every offered chunk admitted or rejected, every admitted
chunk fed or shed -- not the decode path, which the soak and farm
suites own.
"""

import numpy as np
import pytest

from repro.farm.config import FarmConfig
from repro.gateway import AdmissionRefused, Gateway, GatewayConfig, GatewayState

from tests.gateway.conftest import VirtualClock, drive

CHUNK = 64


def make_gateway(phy_config, vclock, **overrides):
    defaults = dict(
        token_rate=1000.0,
        token_burst=100.0,
        max_intake_chunks=8,
        max_streams=4,
        queue_high=64,
        queue_low=2,
        patience=3,
        max_retries=0,
        slot_s=0.01,
        deadline_s=10.0,
    )
    defaults.update(overrides)
    return Gateway(
        phy_config,
        gateway=GatewayConfig(**defaults),
        farm=FarmConfig(n_workers=2, ring_slots=4, ring_slot_samples=CHUNK),
        backend="inline",
        clock=vclock,
        sleep=vclock.sleep,
    )


def chunk():
    return np.zeros(CHUNK, dtype=np.complex128)


class TestLifecycle:
    def test_submit_step_close_accounting(self, phy_config, vclock):
        async def body():
            with make_gateway(phy_config, vclock) as gw:
                sid = await gw.open_stream()
                for _ in range(3):
                    assert await gw.submit(sid, chunk())
                assert gw.queue_depth == 3
                dispatched = await gw.step()
                assert dispatched == 3
                report = await gw.close_stream(sid)
            return report

        report = drive(body())
        assert report.admitted == 3
        assert report.fed == 3
        assert report.shed == 0
        assert report.rejected == 0

    def test_max_streams_refused(self, phy_config, vclock):
        async def body():
            with make_gateway(phy_config, vclock, max_streams=1) as gw:
                await gw.open_stream()
                with pytest.raises(AdmissionRefused):
                    await gw.open_stream()
                assert gw.rejected == 1

        drive(body())

    def test_draining_refuses_everything(self, phy_config, vclock):
        async def body():
            with make_gateway(phy_config, vclock) as gw:
                sid = await gw.open_stream()
                gw.ladder.force(GatewayState.DRAINING)
                with pytest.raises(AdmissionRefused):
                    await gw.open_stream()
                assert not await gw.submit(sid, chunk())

        drive(body())

    def test_closed_gateway_raises(self, phy_config, vclock):
        async def body():
            gw = make_gateway(phy_config, vclock)
            gw.close()
            with pytest.raises(RuntimeError):
                await gw.open_stream()

        drive(body())

    def test_poll_frames_drains(self, phy_config, vclock):
        async def body():
            with make_gateway(phy_config, vclock) as gw:
                sid = await gw.open_stream()
                await gw.submit(sid, chunk())
                await gw.step()
                first = gw.poll_frames(sid)
                assert gw.poll_frames(sid) == []
                assert isinstance(first, list)
                await gw.close_stream(sid)

        drive(body())


class TestAdmission:
    def test_intake_bound_rejects(self, phy_config, vclock):
        async def body():
            with make_gateway(phy_config, vclock, max_intake_chunks=2) as gw:
                sid = await gw.open_stream()
                assert await gw.submit(sid, chunk())
                assert await gw.submit(sid, chunk())
                assert not await gw.submit(sid, chunk())
                report = await gw.close_stream(sid)
            return report

        report = drive(body())
        assert report.admitted == 2
        assert report.rejected == 1

    def test_empty_bucket_retries_then_admits(self, phy_config, vclock):
        async def body():
            gw = make_gateway(
                phy_config,
                vclock,
                token_rate=100.0,
                token_burst=1.0,
                max_retries=5,
            )
            with gw:
                sid = await gw.open_stream()
                assert await gw.submit(sid, chunk())  # takes the only token
                # The next submit finds the bucket empty, backs off on
                # the virtual clock (refilling it), and succeeds.
                assert await gw.submit(sid, chunk())
                assert gw.retries > 0
                assert gw.rejected == 0

        drive(body())

    def test_deadline_miss_is_counted(self, phy_config, vclock):
        async def body():
            gw = make_gateway(
                phy_config,
                vclock,
                token_rate=0.001,
                token_burst=1.0,
                max_retries=8,
                slot_s=1.0,
                deadline_s=0.5,
            )
            with gw:
                sid = await gw.open_stream()
                assert await gw.submit(sid, chunk())
                assert not await gw.submit(sid, chunk())
                assert gw.deadline_misses == 1
                assert gw.rejected == 1

        drive(body())


class TestShedding:
    def test_shed_drops_lowest_priority_first(self, phy_config, vclock):
        async def body():
            gw = make_gateway(
                phy_config, vclock, queue_high=4, queue_low=1, patience=1
            )
            with gw:
                low = await gw.open_stream(priority=0)
                high = await gw.open_stream(priority=1)
                for _ in range(3):
                    assert await gw.submit(low, chunk())
                    assert await gw.submit(high, chunk())
                # Two zero-budget cycles climb FULL -> THROTTLED -> SHED
                # without dispatching; the SHED cycle drops intake down
                # to the low watermark, lowest priority first.
                await gw.step(budget=0)
                assert gw.state is GatewayState.THROTTLED
                await gw.step(budget=0)
                assert gw.queue_depth == 1
                assert gw.shed == 5
                await gw.step()
                rep_low = await gw.close_stream(low)
                rep_high = await gw.close_stream(high)
            return rep_low, rep_high

        rep_low, rep_high = drive(body())
        assert (rep_low.admitted, rep_low.fed, rep_low.shed) == (3, 0, 3)
        assert (rep_high.admitted, rep_high.fed, rep_high.shed) == (3, 1, 2)

    def test_throttled_ladder_slows_bucket(self, phy_config, vclock):
        async def body():
            gw = make_gateway(
                phy_config,
                vclock,
                queue_high=2,
                queue_low=1,
                patience=1,
                throttle_factor=0.25,
            )
            with gw:
                sid = await gw.open_stream()
                await gw.submit(sid, chunk())
                await gw.submit(sid, chunk())
                await gw.step(budget=0)
                assert gw.state is GatewayState.THROTTLED
                assert gw.bucket.throttle == pytest.approx(0.25)
                # The queue is still hot when the next cycle observes,
                # so the ladder passes through SHED while draining;
                # two cool cycles later it is FULL and the refill
                # multiplier is restored.
                await gw.step()
                await gw.step()
                await gw.step()
                assert gw.state is GatewayState.FULL
                assert gw.bucket.throttle == pytest.approx(1.0)
                await gw.close_stream(sid)

        drive(body())

    def test_close_without_flush_counts_shed(self, phy_config, vclock):
        async def body():
            with make_gateway(phy_config, vclock) as gw:
                sid = await gw.open_stream()
                for _ in range(4):
                    await gw.submit(sid, chunk())
                return await gw.close_stream(sid, flush=False)

        report = drive(body())
        assert report.admitted == 4
        assert report.fed == 0
        assert report.shed == 4
