"""Unit tests for the admission primitives: bucket and retry policy."""

import numpy as np
import pytest

from repro.gateway import RetryPolicy, TokenBucket

from tests.gateway.conftest import VirtualClock


class TestTokenBucket:
    def test_starts_at_burst_and_drains(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=4.0, clock=clock)
        assert bucket.tokens == pytest.approx(4.0)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_from_clock(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=100.0, clock=clock)
        while bucket.try_acquire():
            pass
        clock.advance(0.5)  # 5 tokens at rate 10
        for _ in range(5):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=100.0, burst=8.0, clock=clock)
        clock.advance(1e6)
        assert bucket.tokens == pytest.approx(8.0)

    def test_throttle_slows_refill(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=100.0, clock=clock)
        while bucket.try_acquire():
            pass
        bucket.throttle = 0.5
        clock.advance(1.0)  # 10 nominal -> 5 throttled
        assert bucket.tokens == pytest.approx(5.0)

    def test_deficit_delay(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.deficit_delay() == pytest.approx(0.0)
        bucket.try_acquire(2.0)
        assert bucket.deficit_delay() == pytest.approx(0.1)
        bucket.throttle = 0.0
        assert bucket.deficit_delay() == np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=4.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestRetryPolicy:
    def test_yields_max_retries_delays(self):
        policy = RetryPolicy(max_retries=5, seed=3)
        assert len(list(policy.delays())) == 5

    def test_zero_retries_is_empty(self):
        assert list(RetryPolicy(max_retries=0).delays()) == []

    def test_deterministic_given_seed(self):
        a = list(RetryPolicy(max_retries=6, seed=11).delays())
        b = list(RetryPolicy(max_retries=6, seed=11).delays())
        assert a == b
        c = list(RetryPolicy(max_retries=6, seed=12).delays())
        assert a != c

    def test_delays_scale_with_slot(self):
        a = list(RetryPolicy(max_retries=4, seed=5, slot_s=0.02).delays())
        b = list(RetryPolicy(max_retries=4, seed=5, slot_s=0.04).delays())
        assert b == pytest.approx([x * 2 for x in a])

    def test_delays_non_negative_and_widening(self):
        """The jitter draw is bounded by the widening window: every
        delay sits in ``[0, cw * slot_s]`` for a BEB-widened cw."""
        policy = RetryPolicy(backoff="beb", max_retries=8, seed=9, slot_s=1.0)
        cw = policy.strategy.initial_cw()
        for attempt, delay in enumerate(policy.delays(), start=1):
            cw = float(policy.strategy.on_failure(cw, attempt))
            assert 0.0 <= delay <= cw

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(slot_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
