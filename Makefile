# Convenience targets for the CBMA reproduction.

PY ?= python

.PHONY: install test lint bench bench-quick bench-perf farm-bench gateway-bench gateway-soak macro-bench macro-validate examples report clean

install:
	pip install -e .
	pip install pytest pytest-benchmark hypothesis

test:
	$(PY) -m pytest tests/ -q

lint:
	$(PY) -m repro lint src tests
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping type check (pip install mypy)"; \
	fi

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SCALE=0.25 $(PY) -m pytest benchmarks/ --benchmark-only -q

# Hot-path latency trajectory (all tiers), gated vs the committed
# baseline (docs/performance.md).
bench-perf:
	$(PY) -m repro bench --quick --output BENCH_0008.json \
		--baseline benchmarks/BENCH_0008.json

# Parallel decode farm only: sessions-per-core / real-time factor.
farm-bench:
	$(PY) -m repro bench --tier farm --quick --output BENCH_0008_farm.json \
		--baseline benchmarks/BENCH_0008.json

# Ingestion gateway tier only: service real-time factor, admission
# throughput, migration overhead.
gateway-bench:
	$(PY) -m repro bench --tier gateway --quick --output BENCH_0008_gateway.json \
		--baseline benchmarks/BENCH_0008.json

# The 50-stream acceptance chaos soak with a mid-soak worker drain
# (exit 1 + shrunken plan artifact on an invariant breach).
gateway-soak:
	$(PY) -m repro gateway soak --streams 50 --rounds 12 --migrate-round 5 \
		--artifact gateway-plan.json

# Fleet-scale macro tier only: engine events-per-second and surface
# lookup latency.
macro-bench:
	$(PY) -m repro bench --tier macro --quick --output BENCH_0008_macro.json \
		--baseline benchmarks/BENCH_0008.json

# Macro <-> sample-domain agreement contract (exit 1 on breach).
macro-validate:
	$(PY) -m repro macro validate --surface benchmarks/FER_SURFACE_0001.json

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/smart_home.py
	$(PY) examples/power_control_study.py
	$(PY) examples/coexistence.py
	$(PY) examples/reliable_sensor_net.py
	$(PY) examples/building_deployment.py
	$(PY) examples/code_family_tour.py

report:
	$(PY) -m repro report --output report.md --scale 0.5

clean:
	rm -rf build dist *.egg-info .pytest_cache benchmarks/results.txt report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
