#!/usr/bin/env python
"""Power-control deep dive: watch Algorithm 1 fix a near-far deployment.

Constructs a deliberately unbalanced two-tag scene -- one tag right next
to the receiver, one across the bench -- and shows:

1. the received power imbalance (paper Table II's "difference" metric)
   and its effect on the error rate;
2. Algorithm 1 stepping the weak tag's antenna impedance, epoch by
   epoch, until the ACK ratios recover;
3. the final impedance ladder positions and the residual error rate.

Run:  python examples/power_control_study.py
"""

from repro import CbmaConfig, CbmaNetwork, Deployment, PowerController
from repro.analysis import format_percent, render_table
from repro.channel.geometry import Point, Room
from repro.phy.snr import relative_power_difference


def build_unbalanced_network(seed: int = 99) -> CbmaNetwork:
    """Tag 0 close to the receiver, tag 1 far across the bench."""
    deployment = Deployment(room=Room(width=4.0, depth=2.0))
    deployment.add_tag(Point(0.35, 0.1))    # strong: near the RX at (0.5, 0)
    deployment.add_tag(Point(-1.4, 0.6))    # weak: far from both devices
    config = CbmaConfig(n_tags=2, seed=seed)
    return CbmaNetwork(config, deployment)


def power_snapshot(network: CbmaNetwork) -> tuple:
    """Per-tag mean received power at the current impedance states."""
    powers = []
    for i, tag in enumerate(network.tags):
        d1, d2 = network.deployment.tag_distances(network.positions[i])
        amp = network.config.budget.received_amplitude(d1, d2, tag.delta_gamma)
        powers.append(amp**2)
    return powers, relative_power_difference(powers)


def main() -> None:
    network = build_unbalanced_network()

    powers, diff = power_snapshot(network)
    print("Initial state (both tags on the default impedance):")
    print(f"  received power ratio (strong/weak): {powers[0] / powers[1]:.1f}x")
    print(f"  Table-II style difference: {format_percent(diff)}")
    before = network.run_rounds(40)
    print(f"  frame error rate without control: {format_percent(before.fer)}")
    print()

    controller = PowerController(packets_per_epoch=10)
    result = network.run_power_control(controller)

    print(f"Algorithm 1 ran {result.epochs} epochs (converged={result.converged}):")
    rows = []
    for epoch, (fer, zs) in enumerate(zip(result.fer_history, result.impedance_history)):
        rows.append([epoch + 1, format_percent(fer), str(zs)])
    print(render_table(["epoch", "FER", "impedance states"], rows))
    print()

    powers, diff = power_snapshot(network)
    after = network.run_rounds(40)
    print("After power control:")
    for i, tag in enumerate(network.tags):
        name = tag.codebook[tag.impedance_index].termination.name
        print(f"  tag {i}: impedance -> {name} (state {tag.impedance_index})")
    print(f"  received power ratio (strong/weak): {powers[0] / powers[1]:.1f}x")
    print(f"  Table-II style difference: {format_percent(diff)}")
    print(f"  frame error rate with control: {format_percent(after.fer)}")


if __name__ == "__main__":
    main()
