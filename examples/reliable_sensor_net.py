#!/usr/bin/env python
"""Reliable sensor network: ARQ + real traffic over concurrent backscatter.

The paper's evaluation saturates the channel; a deployed IoT network
looks different -- sensors report sporadically and every reading must
arrive.  This example runs four battery-free sensors with Poisson
traffic through the full CBMA stack plus the stop-and-wait ARQ layer,
sweeping the offered load, and reports delivery ratio, latency and
retransmission cost -- plus an energy check that the duty cycle each
load implies is harvestable at the sensors' distance.

Run:  python examples/reliable_sensor_net.py
"""

import numpy as np

from repro import CbmaConfig, CbmaNetwork, Deployment
from repro.analysis import format_percent, render_table
from repro.mac.arq import ArqSimulator
from repro.sim.traffic import PoissonArrivals
from repro.tag.energy import TagEnergyModel

N_TAGS = 4
ROUNDS = 150
ES_TO_TAG_M = 0.5


def run_load(load_fraction: float, seed: int = 23):
    """ARQ simulation at *load_fraction* of one message/round/tag."""
    config = CbmaConfig(n_tags=N_TAGS, seed=seed, payload_bytes=12)
    network = CbmaNetwork(config, Deployment.linear(N_TAGS, tag_to_rx=1.0))
    rate_hz = load_fraction / config.frame_duration_s()
    sim = ArqSimulator(network, PoissonArrivals(rate_hz))
    stats = sim.run(ROUNDS, rng=np.random.default_rng(seed))
    return config, stats


def main() -> None:
    rows = []
    energy = TagEnergyModel()
    sustainable = energy.sustainable_duty_cycle(ES_TO_TAG_M)

    for load in (0.1, 0.3, 0.6, 1.0, 1.5):
        config, stats = run_load(load)
        # Each transmission keeps the tag active for one frame; the
        # long-run duty cycle is transmissions / rounds / tags.
        duty = stats.transmissions / (ROUNDS * N_TAGS)
        rows.append(
            [
                f"{load:.1f} msg/round",
                stats.offered,
                format_percent(stats.delivery_ratio),
                f"{stats.mean_latency_s * 1e3:.1f} ms",
                f"{stats.p95_latency_s * 1e3:.1f} ms",
                f"{stats.mean_attempts:.2f}",
                f"{duty:.2f} ({'ok' if duty <= sustainable else 'EXCEEDS harvest'})",
            ]
        )

    print(
        render_table(
            [
                "offered load",
                "messages",
                "delivered",
                "mean latency",
                "p95 latency",
                "attempts/msg",
                "tag duty cycle",
            ],
            rows,
            title=f"Reliable sensor network: {N_TAGS} tags, stop-and-wait ARQ, {ROUNDS} rounds",
        )
    )
    print()
    print(
        f"Energy check: at {ES_TO_TAG_M} m from the excitation source a tag can\n"
        f"sustain a duty cycle of {sustainable:.2f} "
        f"(harvested {energy.harvester.harvested_power_w(ES_TO_TAG_M) * 1e6:.1f} uW"
        f" vs {energy.active_power_w * 1e6:.1f} uW active draw)."
    )


if __name__ == "__main__":
    main()
