#!/usr/bin/env python
"""Building-scale deployment: 12 tags, 4-at-a-time, people moving things.

The paper demonstrates 10 concurrent tags; a real building has more
tags than the receiver can decode at once, occupants who move them, and
a fairness requirement: every sensor must get air time.  This example
drives :class:`repro.system.CbmaSystem` -- the full life cycle of group
rotation, cached power control, data transfer and mobility -- for 20
epochs, then reports per-tag service, delivery and the fairness index,
showing the Sec. VIII-D starvation remedy working end to end.

Run:  python examples/building_deployment.py
"""

from repro import CbmaConfig, CbmaSystem, Deployment, Room
from repro.analysis import format_percent, render_table
from repro.analysis.ascii_plots import sparkline
from repro.channel.mobility import RandomWalk

POPULATION = 12
GROUP_SIZE = 4
EPOCHS = 20
ROUNDS_PER_EPOCH = 15


def main() -> None:
    deployment = Deployment.random(
        POPULATION, rng=17, room=Room(width=1.8, depth=1.4), min_spacing=0.12
    )
    system = CbmaSystem(
        CbmaConfig(n_tags=GROUP_SIZE, seed=17),
        deployment,
        mobility=RandomWalk(step_sigma_m=0.02),  # objects get nudged
        mobility_dt_s=5.0,
    )

    print(f"{POPULATION} tags, groups of {GROUP_SIZE}, {EPOCHS} epochs...")
    fers = []
    pc_runs = 0
    for _ in range(EPOCHS):
        report = system.run_epoch(rounds=ROUNDS_PER_EPOCH)
        fers.append(report.fer)
        pc_runs += report.power_control_ran

    print(f"epoch FER: {sparkline(fers)}  (min {min(fers):.2f}, max {max(fers):.2f})")
    print(
        f"power control ran in {pc_runs}/{EPOCHS} epochs "
        f"(cached for repeated group compositions, invalidated by motion)"
    )
    print()

    shares = system.service_log.schedule_shares()
    delivery = system.per_tag_delivery()
    rows = []
    for i in range(POPULATION):
        rows.append(
            [
                i,
                format_percent(shares[i]),
                format_percent(delivery[i]) if system.metrics.per_tag_sent.get(i) else "-",
            ]
        )
    print(
        render_table(
            ["tag", "air-time share", "delivery when scheduled"],
            rows,
            title="Per-tag service over the whole run",
        )
    )
    print()
    print(f"Jain fairness of air time: {system.fairness():.3f} (1.0 = perfectly even)")
    print(f"starved tags (<5% share): {system.service_log.starved() or 'none'}")
    print(f"network-wide FER: {format_percent(system.metrics.fer)}")
    print(f"aggregate goodput: {system.metrics.goodput_bps / 1e3:.1f} kbps")


if __name__ == "__main__":
    main()
