#!/usr/bin/env python
"""Quickstart: five concurrent backscatter tags through a full CBMA link.

Builds the paper's benchmark scene -- an excitation source and receiver
1 m apart, five passive tags on the bench -- runs 50 collision rounds
through the sample-level simulator, and prints the link metrics.

Run:  python examples/quickstart.py
"""

from repro import CbmaConfig, CbmaNetwork, Deployment
from repro.analysis import format_percent, render_table


def main() -> None:
    config = CbmaConfig(
        n_tags=5,          # five tags transmit simultaneously
        code_family="2nc",  # the paper's preferred spreading codes
        code_length=64,
        payload_bytes=16,
        seed=7,            # full run is reproducible from this seed
    )
    deployment = Deployment.linear(config.n_tags, tag_to_rx=1.0)
    network = CbmaNetwork(config, deployment)

    metrics = network.run_rounds(50)

    print("CBMA quickstart -- 5 concurrent tags, 50 rounds")
    print(
        render_table(
            ["metric", "value"],
            [
                ["frames sent", metrics.frames_sent],
                ["frames decoded correctly", metrics.frames_correct],
                ["frame error rate", format_percent(metrics.fer)],
                ["packet reception rate", format_percent(metrics.prr)],
                ["user detection rate", format_percent(metrics.detection_rate)],
                ["aggregate goodput", f"{metrics.goodput_bps / 1e3:.1f} kbps"],
            ],
        )
    )
    print()
    print("Per-tag ACK ratios:")
    for tag in network.tags:
        ratio = metrics.per_tag_ack_ratio(tag.tag_id)
        state = tag.codebook[tag.impedance_index].termination.name
        print(f"  tag {tag.tag_id}: {format_percent(ratio)}  (impedance state: {state})")


if __name__ == "__main__":
    main()
