#!/usr/bin/env python
"""Smart-home deployment: the paper's Fig. 1 motivating scenario.

A living room hosts a WiFi access point (the excitation source), a
receiver, and a handful of battery-free sensor tags -- thermostat,
door, window, plant-moisture, motion -- scattered at realistic
positions.  Each sensor periodically reports a small reading.  The
script runs the full CBMA stack including Algorithm 1 power control,
then prints a per-sensor delivery report and shows what power control
changed.

Run:  python examples/smart_home.py
"""

from repro import CbmaConfig, CbmaNetwork, Deployment, PowerController
from repro.analysis import format_percent, render_table
from repro.channel.geometry import Point, Room

SENSORS = [
    ("thermostat", Point(0.8, 0.3)),
    ("door", Point(-1.6, 1.2)),
    ("window", Point(1.9, -1.0)),
    ("plant", Point(-0.4, -1.3)),
    ("motion", Point(0.1, 1.5)),
]


def build_network(seed: int = 2026) -> CbmaNetwork:
    """A 6 x 4 m living room with the AP and receiver near the centre."""
    room = Room(width=6.0, depth=4.0)
    deployment = Deployment(
        excitation=Point(-0.5, 0.0),
        receiver=Point(0.5, 0.0),
        room=room,
    )
    for _name, position in SENSORS:
        deployment.add_tag(position)
    config = CbmaConfig(
        n_tags=len(SENSORS),
        payload_bytes=8,   # a sensor reading is small
        seed=seed,
    )
    return CbmaNetwork(config, deployment)


def report(network: CbmaNetwork, rounds: int) -> dict:
    """Run *rounds* reporting periods; return per-sensor delivery."""
    metrics = network.run_rounds(rounds)
    return {
        name: metrics.per_tag_ack_ratio(i) for i, (name, _pos) in enumerate(SENSORS)
    }, metrics


def main() -> None:
    network = build_network()

    print("Phase 1: sensors just powered up (default impedance state)")
    before, metrics_before = report(network, 40)

    print("Phase 2: running Algorithm 1 power control...")
    result = network.run_power_control(PowerController(packets_per_epoch=8))
    print(
        f"  converged={result.converged} after {result.epochs} epochs, "
        f"loop FER {format_percent(result.final_fer)}"
    )

    after, metrics_after = report(network, 40)

    rows = []
    for i, (name, pos) in enumerate(SENSORS):
        tag = network.tags[i]
        rows.append(
            [
                name,
                f"({pos.x:+.1f}, {pos.y:+.1f})",
                format_percent(before[name]),
                format_percent(after[name]),
                tag.codebook[tag.impedance_index].termination.name,
            ]
        )
    print()
    print(
        render_table(
            ["sensor", "position (m)", "delivery before", "delivery after", "impedance"],
            rows,
            title="Smart-home sensor delivery (before vs after power control)",
        )
    )
    print()
    print(
        f"Room-wide FER: {format_percent(metrics_before.fer)} -> "
        f"{format_percent(metrics_after.fer)}"
    )


if __name__ == "__main__":
    main()
