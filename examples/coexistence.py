#!/usr/bin/env python
"""Coexistence study: CBMA alongside WiFi, Bluetooth and OFDM excitation.

The backscatter band is shared real estate.  This example reproduces
the paper's working-condition analysis (Fig. 12) interactively: three
tags run under four channel conditions and the script explains *why*
each condition costs what it costs -- WiFi's CSMA/CA bursts and
Bluetooth's frequency hopping leave most of the air quiet, while an
intermittent OFDM excitation starves the tags of energy to reflect.

Run:  python examples/coexistence.py
"""

from repro import CbmaConfig, CbmaNetwork, Deployment
from repro.analysis import format_percent, render_table
from repro.channel.interference import (
    BluetoothInterference,
    OfdmExcitationGate,
    WiFiInterference,
)

ROUNDS = 80


def run_condition(name, seed=71, **overrides) -> float:
    """PRR of a 3-tag network under one channel condition."""
    config = CbmaConfig(n_tags=3, seed=seed, **overrides)
    deployment = Deployment.linear(3, tag_to_rx=1.0)
    network = CbmaNetwork(config, deployment)
    return network.run_rounds(ROUNDS).prr


def main() -> None:
    wifi = WiFiInterference(power_dbm=-50.0)
    bluetooth = BluetoothInterference(power_dbm=-45.0)
    ofdm = OfdmExcitationGate(mean_on_s=25e-3, mean_off_s=10e-3)

    conditions = [
        (
            "clean channel",
            {},
            "baseline: only thermal noise and the receiver's own floor",
        ),
        (
            "WiFi traffic",
            {"interference": wifi},
            f"CSMA/CA bursts, ~{wifi.duty_cycle():.0%} duty cycle in-band",
        ),
        (
            "Bluetooth traffic",
            {"interference": bluetooth},
            f"FHSS: hits our 1 MHz band ~1 slot in {int(1 / bluetooth.hit_probability)}",
        ),
        (
            "OFDM excitation",
            {"excitation_gate": ofdm},
            f"excitation present only ~{ofdm.duty_cycle():.0%} of the time",
        ),
    ]

    rows = []
    for name, overrides, why in conditions:
        prr = run_condition(name, **overrides)
        rows.append([name, format_percent(prr), why])

    print(
        render_table(
            ["condition", "packet reception rate", "mechanism"],
            rows,
            title="CBMA coexistence (3 concurrent tags, 80 packets each)",
        )
    )
    print()
    print(
        "Reading: WiFi/Bluetooth share the air politely (random backoff,\n"
        "frequency hopping) so CBMA loses only a little; an intermittent\n"
        "OFDM excitation leaves the tags nothing to reflect during gaps,\n"
        "which is why the paper recommends a dedicated tone excitation."
    )


if __name__ == "__main__":
    main()
