#!/usr/bin/env python
"""Code-family tour: pick the right spreading codes for your deployment.

CBMA's code domain is pluggable: Gold (the classic), the paper's
preferred 2NC, Kasami (Welch-bound optimal), and Walsh (the tempting
wrong answer).  This example:

1. prints each family's analytic correlation report;
2. sweeps 2..5-tag collisions for every family over the same channels
   (same seeds, via repro.sim.sweep) and compares error rates;
3. explains the Walsh trap visible in the sweep: zero-lag
   orthogonality never gets a chance in a correlation receiver.

Run:  python examples/code_family_tour.py
"""

from repro.analysis import render_table, sparkline
from repro.channel.geometry import Deployment
from repro.codes import analyze_family, make_codes
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.sim.sweep import grid, sweep

FAMILIES = (("gold", 31), ("2nc", 64), ("kasami", 63), ("walsh", 64))
ROUNDS = 40


def family_fer(params, seed):
    """One sweep point: FER of a family at a tag count."""
    cfg = CbmaConfig(
        n_tags=params["n_tags"],
        code_family=params["family"],
        code_length=params["length"],
        seed=seed,
        max_offset_chips=params.get("max_offset_chips", 8.0),
    )
    net = CbmaNetwork(cfg, Deployment.linear(params["n_tags"], tag_to_rx=1.0))
    return net.run_rounds(ROUNDS).fer


def main() -> None:
    print("Analytic correlation properties (lower is better):")
    rows = []
    for family, length in FAMILIES:
        report = analyze_family(make_codes(family, 5, length))
        rows.append(
            [
                f"{family}-{length}",
                f"{report.max_cross:.3f}",
                f"{report.mean_cross:.3f}",
                f"{report.max_offpeak_auto:.3f}",
                f"{abs(report.worst_balance):.3f}",
            ]
        )
    print(
        render_table(
            ["family", "max cross", "mean cross", "max off-peak auto", "worst |balance|"],
            rows,
        )
    )
    print()

    print(f"Simulated error rate, 2..5 concurrent asynchronous tags ({ROUNDS} rounds/point):")
    tag_counts = [2, 3, 4, 5]
    table = []
    for family, length in FAMILIES:
        points = grid(n_tags=tag_counts, family=[family], length=[length])
        fers = sweep(family_fer, points, seed=101)
        table.append(
            [f"{family}-{length}"]
            + [f"{f:.3f}" for f in fers]
            + [sparkline(fers, lo=0.0, hi=max(max(fers), 0.2))]
        )
    print(
        render_table(
            ["family"] + [f"{n} tags" for n in tag_counts] + ["trend"], table
        )
    )
    print()

    print("The Walsh trap:")
    print(
        "Walsh codes are exactly orthogonal at zero lag (mean cross 0.075,\n"
        "best in the analytic table) yet collapse beyond 2 tags in the sweep.\n"
        "Two reasons, both structural: (1) their off-peak autocorrelation is\n"
        "1.0 -- a Walsh row is short-periodic, so the receiver's preamble\n"
        "correlator sees perfect self-images everywhere and cannot find the\n"
        "frame start; (2) any chip misalignment between tags destroys the\n"
        "zero-lag orthogonality they were chosen for.  This is the paper's\n"
        "Sec. II-C argument for PN families, made quantitative."
    )


if __name__ == "__main__":
    main()
