"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose pip lacks the ``wheel`` package (legacy
``setup.py develop`` path). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
